"""Determinism battery: same seed ⇒ bit-identical results and telemetry.

Three layers of the reproducibility contract:

1. In-process repeatability — two ``train_ppo``/``AdversaryTrainer``
   runs with the same seed produce bit-identical histories.
2. Serial/vectorized parity — adversary training over a plain env and a
   ``SyncVectorEnv`` with one lane produce bit-identical histories *and*
   telemetry event streams (payloads, and timestamps under a
   ``ManualClock``).
3. Cross-process — the same training job executed in two fresh worker
   processes via ``run_parallel`` returns bit-identical histories.

"Bit-identical" means ``==`` on the float dicts — no tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import envs
from repro.attacks import AttackConfig, StatePerturbationEnv
from repro.attacks.imap.regularizers import make_regularizer
from repro.attacks.trainer import AdversaryTrainer
from repro.rl import TrainConfig, train_ppo
from repro.runtime import Job, SyncVectorEnv, run_parallel
from repro.telemetry import ManualClock, Telemetry


@pytest.fixture(scope="module")
def small_victim():
    result = train_ppo(envs.make("Hopper-v0"),
                       TrainConfig(iterations=1, steps_per_iteration=256, seed=0))
    result.policy.freeze_normalizer()
    return result.policy


def _train_attack(env, telemetry=None, regularizer_name="pc"):
    config = AttackConfig(iterations=2, steps_per_iteration=128, seed=3)
    regularizer = make_regularizer(regularizer_name, config)
    trainer = AdversaryTrainer(env, config, regularizer=regularizer,
                               telemetry=telemetry)
    return trainer.train()


class TestInProcessDeterminism:
    def test_train_ppo_history_bit_identical(self):
        config = TrainConfig(iterations=2, steps_per_iteration=128, seed=7)
        first = train_ppo(envs.make("Hopper-v0"), config)
        second = train_ppo(envs.make("Hopper-v0"), config)
        assert first.history == second.history
        assert first.final_return == second.final_return

    def test_attack_history_bit_identical(self, small_victim):
        def env():
            return StatePerturbationEnv(envs.make("Hopper-v0"), small_victim,
                                        epsilon=0.6, seed=0)

        assert _train_attack(env()).history == _train_attack(env()).history

    def test_telemetry_trace_bit_identical(self, small_victim):
        """Whole event streams (incl. ManualClock timestamps) reproduce."""
        def run():
            telemetry = Telemetry.in_memory(clock=ManualClock(0.0, auto_tick=0.25))
            env = StatePerturbationEnv(envs.make("Hopper-v0"), small_victim,
                                       epsilon=0.6, seed=0)
            _train_attack(env, telemetry=telemetry)
            return telemetry.sink.events

        assert run() == run()


class TestSerialVsVectorizedDeterminism:
    def test_history_and_event_payloads_identical(self, small_victim):
        def adv_env():
            return StatePerturbationEnv(envs.make("Hopper-v0"), small_victim,
                                        epsilon=0.6, seed=0)

        serial_t = Telemetry.in_memory(clock=ManualClock(0.0, auto_tick=0.25))
        serial = _train_attack(adv_env(), telemetry=serial_t)

        vec_t = Telemetry.in_memory(clock=ManualClock(0.0, auto_tick=0.25))
        vectorized = _train_attack(SyncVectorEnv([adv_env()]), telemetry=vec_t)

        assert serial.history == vectorized.history
        # Deterministic payloads match event-for-event; only perf
        # (steps/sec, collector flavour) may differ between the paths.
        assert serial_t.sink.payloads() == vec_t.sink.payloads()
        assert [e["type"] for e in serial_t.sink.events] == \
            [e["type"] for e in vec_t.sink.events]


def _attack_history_job(seed: int = 3):
    """Self-contained training cell for the cross-process test (picklable)."""
    victim = train_ppo(envs.make("Hopper-v0"),
                       TrainConfig(iterations=1, steps_per_iteration=256, seed=0)).policy
    victim.freeze_normalizer()
    env = StatePerturbationEnv(envs.make("Hopper-v0"), victim, epsilon=0.6, seed=0)
    config = AttackConfig(iterations=1, steps_per_iteration=128, seed=seed)
    trainer = AdversaryTrainer(env, config,
                               regularizer=make_regularizer("pc", config))
    return trainer.train().history


class TestCrossProcessDeterminism:
    def test_run_parallel_fresh_processes_identical(self):
        jobs = [Job(fn=_attack_history_job, kwargs={"seed": 3}, name=f"run{i}")
                for i in range(2)]
        report = run_parallel(jobs, max_workers=2)
        assert report.n_failed == 0, report.failures
        first, second = report.values()
        assert first == second
        # ... and both match an in-process run of the same cell.
        assert first == _attack_history_job(seed=3)
