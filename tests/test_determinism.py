"""Determinism battery: same seed ⇒ bit-identical results and telemetry.

Five layers of the reproducibility contract:

1. In-process repeatability — two ``train_ppo``/``AdversaryTrainer``
   runs with the same seed produce bit-identical histories.
2. Serial/vectorized parity — adversary training over a plain env and a
   ``SyncVectorEnv`` with one lane produce bit-identical histories *and*
   telemetry event streams (payloads, and timestamps under a
   ``ManualClock``).
3. Cross-process — the same training job executed in two fresh worker
   processes via ``run_parallel`` returns bit-identical histories.
4. Cross-lane (PR 7) — serial, ``SyncVectorEnv``, and
   ``AsyncVectorEnv`` backends produce bit-identical trainer histories
   and full rollout arrays at matched seeds.
5. Pool vs spawn-per-job (PR 7) — ``run_parallel(pool=...)`` on a
   persistent ``WorkerPool`` returns the same bits as spawn-per-job
   scheduling, including after a worker was killed and replaced.

"Bit-identical" means ``==`` on the float dicts — no tolerances.
"""

from __future__ import annotations

import dataclasses
import os
import signal

import numpy as np
import pytest

from repro import envs
from repro.attacks import AttackConfig, StatePerturbationEnv
from repro.attacks.imap.regularizers import make_regularizer
from repro.attacks.trainer import AdversaryTrainer
from repro.rl import TrainConfig, train_ppo
from repro.rl.policy import ActorCritic
from repro.runtime import (
    AsyncVectorEnv,
    Job,
    SyncVectorEnv,
    WorkerPool,
    run_parallel,
)
from repro.runtime.collector import collect_adversary_rollout_vec
from repro.telemetry import ManualClock, Telemetry


@pytest.fixture(scope="module")
def small_victim():
    result = train_ppo(envs.make("Hopper-v0"),
                       TrainConfig(iterations=1, steps_per_iteration=256, seed=0))
    result.policy.freeze_normalizer()
    return result.policy


def _train_attack(env, telemetry=None, regularizer_name="pc"):
    config = AttackConfig(iterations=2, steps_per_iteration=128, seed=3)
    regularizer = make_regularizer(regularizer_name, config)
    trainer = AdversaryTrainer(env, config, regularizer=regularizer,
                               telemetry=telemetry)
    return trainer.train()


class TestInProcessDeterminism:
    def test_train_ppo_history_bit_identical(self):
        config = TrainConfig(iterations=2, steps_per_iteration=128, seed=7)
        first = train_ppo(envs.make("Hopper-v0"), config)
        second = train_ppo(envs.make("Hopper-v0"), config)
        assert first.history == second.history
        assert first.final_return == second.final_return

    def test_attack_history_bit_identical(self, small_victim):
        def env():
            return StatePerturbationEnv(envs.make("Hopper-v0"), small_victim,
                                        epsilon=0.6, seed=0)

        assert _train_attack(env()).history == _train_attack(env()).history

    def test_telemetry_trace_bit_identical(self, small_victim):
        """Whole event streams (incl. ManualClock timestamps) reproduce."""
        def run():
            telemetry = Telemetry.in_memory(clock=ManualClock(0.0, auto_tick=0.25))
            env = StatePerturbationEnv(envs.make("Hopper-v0"), small_victim,
                                       epsilon=0.6, seed=0)
            _train_attack(env, telemetry=telemetry)
            return telemetry.sink.events

        assert run() == run()


class TestSerialVsVectorizedDeterminism:
    def test_history_and_event_payloads_identical(self, small_victim):
        def adv_env():
            return StatePerturbationEnv(envs.make("Hopper-v0"), small_victim,
                                        epsilon=0.6, seed=0)

        serial_t = Telemetry.in_memory(clock=ManualClock(0.0, auto_tick=0.25))
        serial = _train_attack(adv_env(), telemetry=serial_t)

        vec_t = Telemetry.in_memory(clock=ManualClock(0.0, auto_tick=0.25))
        vectorized = _train_attack(SyncVectorEnv([adv_env()]), telemetry=vec_t)

        assert serial.history == vectorized.history
        # Deterministic payloads match event-for-event; only perf
        # (steps/sec, collector flavour) may differ between the paths.
        assert serial_t.sink.payloads() == vec_t.sink.payloads()
        assert [e["type"] for e in serial_t.sink.events] == \
            [e["type"] for e in vec_t.sink.events]


def _attack_history_job(seed: int = 3):
    """Self-contained training cell for the cross-process test (picklable)."""
    victim = train_ppo(envs.make("Hopper-v0"),
                       TrainConfig(iterations=1, steps_per_iteration=256, seed=0)).policy
    victim.freeze_normalizer()
    env = StatePerturbationEnv(envs.make("Hopper-v0"), victim, epsilon=0.6, seed=0)
    config = AttackConfig(iterations=1, steps_per_iteration=128, seed=seed)
    trainer = AdversaryTrainer(env, config,
                               regularizer=make_regularizer("pc", config))
    return trainer.train().history


class TestCrossProcessDeterminism:
    def test_run_parallel_fresh_processes_identical(self):
        jobs = [Job(fn=_attack_history_job, kwargs={"seed": 3}, name=f"run{i}")
                for i in range(2)]
        report = run_parallel(jobs, max_workers=2)
        assert report.n_failed == 0, report.failures
        first, second = report.values()
        assert first == second
        # ... and both match an in-process run of the same cell.
        assert first == _attack_history_job(seed=3)


class TestThreeLaneDeterminism:
    """Serial vs SyncVectorEnv vs AsyncVectorEnv at matched seeds."""

    def test_trainer_histories_identical_across_backends(self, small_victim):
        def adv_env():
            return StatePerturbationEnv(envs.make("Hopper-v0"), small_victim,
                                        epsilon=0.6, seed=0)

        serial = _train_attack(adv_env())
        sync = _train_attack(SyncVectorEnv([adv_env()]))
        async_vec = AsyncVectorEnv([adv_env()])
        try:
            asynchronous = _train_attack(async_vec)
        finally:
            async_vec.close()
        assert serial.history == sync.history
        assert sync.history == asynchronous.history

    def test_rollout_arrays_identical_sync_vs_async(self, small_victim):
        """Every field of the collected AdversaryRollout, two lanes."""
        def lanes():
            return [StatePerturbationEnv(envs.make("Hopper-v0"), small_victim,
                                         epsilon=0.6)
                    for _ in range(2)]

        def collect(vec):
            vec.seed(17)
            policy = ActorCritic(vec.observation_space.shape[0],
                                 vec.action_space.shape[0], hidden_sizes=(8,),
                                 rng=np.random.default_rng(9))
            rng = np.random.default_rng(np.random.SeedSequence(23))
            return collect_adversary_rollout_vec(vec, policy, 128, rng)

        sync_rollout = collect(SyncVectorEnv(lanes()))
        async_vec = AsyncVectorEnv(lanes())
        try:
            async_rollout = collect(async_vec)
        finally:
            async_vec.close()
        for field in dataclasses.fields(sync_rollout):
            sync_value = getattr(sync_rollout, field.name)
            async_value = getattr(async_rollout, field.name)
            if isinstance(sync_value, np.ndarray):
                np.testing.assert_array_equal(sync_value, async_value,
                                              err_msg=field.name)
            else:
                assert sync_value == async_value, field.name


def _seeded_values_job(seed: int = 0):
    """Pure function of a SeedSequence-derived generator (picklable)."""
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    return rng.standard_normal(16).tolist()


class TestPoolVsSpawnDeterminism:
    def test_pool_matches_spawn_per_job_training_cells(self):
        def jobs():
            return [Job(fn=_attack_history_job, kwargs={"seed": s},
                        name=f"seed{s}") for s in (3, 4)]

        spawn_report = run_parallel(jobs(), max_workers=2)
        assert spawn_report.n_failed == 0, spawn_report.failures
        with WorkerPool(max_workers=2) as pool:
            pool_report = run_parallel(jobs(), pool=pool)
        assert pool_report.n_failed == 0, pool_report.failures
        assert spawn_report.values() == pool_report.values()

    def test_results_identical_after_worker_replacement(self):
        def jobs():
            return [Job(fn=_seeded_values_job, kwargs={"seed": s},
                        name=f"seed{s}") for s in range(6)]

        expected = [_seeded_values_job(seed=s) for s in range(6)]
        with WorkerPool(max_workers=2) as pool:
            before = run_parallel(jobs(), pool=pool)
            # Kill an idle worker between sweeps: the next dispatch that
            # lands on the corpse is replaced and requeued transparently.
            victim = pool._idle[0]
            os.kill(victim.process.pid, signal.SIGKILL)
            victim.process.join(5.0)
            after = run_parallel(jobs(), pool=pool)
            assert pool.replacements >= 1
        assert before.n_failed == after.n_failed == 0
        assert before.values() == expected
        assert after.values() == expected
