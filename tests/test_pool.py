"""WorkerPool unit battery: reuse, supervision, payload caching, cleanup.

The determinism-facing properties (pool vs spawn-per-job bit-identity,
replacement transparency) live in ``tests/test_determinism.py``; the
fault-injection cases (SIGKILL mid-job, leak checks under SIGKILL) in
``tests/test_chaos.py``.  This file covers the pool's own mechanics.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from pathlib import Path

import pytest

from repro.runtime import Job, WorkerPool, run_parallel
from repro.runtime.scheduler import _execute_payload


def _pid_job(seed=None):
    return os.getpid()


def _square_job(x, seed=None):
    return x * x


def _sleep_job(seconds=3600.0, seed=None):
    time.sleep(seconds)
    return "woke"


def _sigstop_job(seed=None):
    os.kill(os.getpid(), signal.SIGSTOP)
    return "resumed"


_REDUCE_CALLS = {"n": 0}


def _rebuild_counted(attempts_left):
    fn = _CountedFailingFn(attempts_left)
    return fn


class _CountedFailingFn:
    """Callable that fails its first ``attempts_left`` calls and counts
    how many times the *parent* process pickles it."""

    def __init__(self, attempts_left: int, marker: str | None = None):
        self.attempts_left = attempts_left
        self.marker = marker

    def __reduce__(self):
        _REDUCE_CALLS["n"] += 1
        return (_rebuild_counted, (self.attempts_left,))

    def __call__(self, seed=None):
        # Cross-process attempt counting via O_EXCL marker files is
        # overkill here: each attempt runs in a fresh unpickle of this
        # object, so "fail always" + retries exercises the requeue path.
        if self.attempts_left > 0:
            raise ValueError("injected failure")
        return "ok"


class TestWorkerPoolBasics:
    def test_run_returns_results_in_job_order(self):
        with WorkerPool(max_workers=2) as pool:
            jobs = [Job(fn=_square_job, args=(i,), name=f"sq{i}")
                    for i in range(6)]
            results, interventions = pool.run(jobs)
        assert interventions == []
        assert [r.value for r in results] == [i * i for i in range(6)]
        assert all(r.ok for r in results)

    def test_workers_are_reused_across_runs(self):
        with WorkerPool(max_workers=2) as pool:
            first, _ = pool.run([Job(fn=_pid_job, name=f"a{i}")
                                 for i in range(4)])
            second, _ = pool.run([Job(fn=_pid_job, name=f"b{i}")
                                  for i in range(4)])
            assert pool.jobs_run == 8
            assert pool.replacements == 0
        first_pids = {r.value for r in first}
        second_pids = {r.value for r in second}
        assert len(first_pids) <= 2
        assert first_pids == second_pids  # same processes, not respawns

    def test_run_parallel_pool_routing_and_report(self):
        with WorkerPool(max_workers=3) as pool:
            jobs = [Job(fn=_square_job, args=(i,), name=f"sq{i}")
                    for i in range(5)]
            report = run_parallel(jobs, pool=pool)
        assert report.n_failed == 0
        assert report.values() == [i * i for i in range(5)]
        assert report.max_workers == 3

    def test_close_is_idempotent_and_run_after_close_raises(self):
        pool = WorkerPool(max_workers=1)
        pool.run([Job(fn=_square_job, args=(2,), name="warm")])
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.run([Job(fn=_square_job, args=(3,), name="late")])

    def test_heartbeat_files_match_live_workers_and_cleanup(self):
        pool = WorkerPool(max_workers=2)
        root = Path(pool._tmp.name)
        # One heartbeat file per live worker while the pool is up.
        deadline = time.monotonic() + 5.0
        while (len(list(root.glob("*.heartbeat"))) < 2
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert len(list(root.glob("*.heartbeat"))) == 2
        pool.close()
        assert not root.exists()  # whole directory removed with the pool


class TestWorkerPoolSupervision:
    def test_timeout_kills_and_replaces(self):
        with WorkerPool(max_workers=1) as pool:
            results, interventions = pool.run(
                [Job(fn=_sleep_job, name="hang")], timeout=0.5)
            assert not results[0].ok
            assert results[0].error_kind == "timeout"
            assert interventions[0]["action"] == "timeout-kill"
            assert pool.replacements == 1
            # The replacement worker serves the next sweep normally.
            results, _ = pool.run([Job(fn=_square_job, args=(3,), name="ok")])
            assert results[0].value == 9

    def test_job_timeout_field_overrides_run_timeout(self):
        with WorkerPool(max_workers=1) as pool:
            results, _ = pool.run(
                [Job(fn=_sleep_job, name="hang", timeout=0.5)], timeout=3600.0)
            assert results[0].error_kind == "timeout"

    def test_deadline_drops_queued_and_kills_running(self):
        with WorkerPool(max_workers=1) as pool:
            jobs = [Job(fn=_sleep_job, name="running"),
                    Job(fn=_sleep_job, name="queued")]
            results, interventions = pool.run(jobs, deadline=0.5)
        assert all(not r.ok and r.error_kind == "timeout" for r in results)
        actions = {i["action"] for i in interventions}
        assert actions == {"deadline-kill", "deadline-drop"}

    def test_stalled_worker_caught_by_heartbeat(self):
        with WorkerPool(max_workers=1, heartbeat_interval=0.05) as pool:
            results, interventions = pool.run(
                [Job(fn=_sigstop_job, name="stall")], heartbeat_timeout=0.5)
            assert results[0].error_kind == "timeout"
            assert interventions[0]["action"] == "heartbeat-kill"
            assert pool.replacements == 1


class TestPayloadCaching:
    def test_payload_is_cached_on_the_job(self):
        job = Job(fn=_square_job, args=(4,), name="sq")
        assert job.payload() is job.payload()
        assert _execute_payload(job.payload()).value == 16

    def test_payload_dropped_when_job_itself_is_pickled(self):
        job = Job(fn=_square_job, args=(4,), name="sq")
        job.payload()
        clone = pickle.loads(pickle.dumps(job))
        assert clone._payload is None  # no double-shipping of cached bytes
        assert _execute_payload(clone.payload()).value == 16

    def test_retries_reuse_one_serialization(self):
        """Regression: requeues/retries must not re-pickle the job.

        The job fn counts parent-side ``__reduce__`` calls; with
        ``retries=2`` the job is attempted three times on the pool, and
        the payload must have been serialized exactly once.
        """
        _REDUCE_CALLS["n"] = 0
        job = Job(fn=_CountedFailingFn(attempts_left=99), name="flaky")
        with WorkerPool(max_workers=1) as pool:
            report = run_parallel([job], pool=pool, retries=2)
        assert report.results[0].ok is False
        assert len(report.retried) == 2  # two requeued attempts before giving up
        assert _REDUCE_CALLS["n"] == 1

    def test_unpicklable_job_is_classified_not_fatal(self):
        with WorkerPool(max_workers=1) as pool:
            results, _ = pool.run(
                [Job(fn=lambda seed=None: 1, name="lambda")])
        assert not results[0].ok
        assert results[0].error_kind == "pickling"
