"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="regenerate tests/goldens/*.json from the current code "
             "instead of comparing against them",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _isolated_artifacts(tmp_path, monkeypatch):
    """Keep zoo checkpoints out of the repo during tests."""
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path / "artifacts"))


@pytest.fixture
def tiny_victim():
    """A quickly trained Hopper victim shared across attack tests."""
    from repro import envs
    from repro.rl import TrainConfig, train_ppo

    result = train_ppo(envs.make("Hopper-v0"),
                       TrainConfig(iterations=2, steps_per_iteration=256, seed=0))
    result.policy.freeze_normalizer()
    return result.policy
