"""White-box gradient attack baselines (PGD family, strategic timing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import envs
from repro.attacks import CriticPgdAttack, PgdAttack, StrategicallyTimedAttack
from repro.eval import evaluate_single_agent


class TestPgdAttack:
    def test_output_in_unit_cube(self, tiny_victim, rng):
        attack = PgdAttack(tiny_victim, steps=3)
        obs = rng.standard_normal(11)
        delta = attack.action(obs)
        assert delta.shape == (11,)
        assert np.abs(delta).max() <= 1.0 + 1e-12

    def test_shifts_victim_action(self, tiny_victim, rng):
        """The PGD direction should shift the victim more than noise does."""
        from repro import nn
        attack = PgdAttack(tiny_victim, steps=5, seed=0)
        obs = rng.standard_normal(11)
        eps = 0.5
        with nn.no_grad():
            base = tiny_victim.distribution(obs).mean.data
            pgd = tiny_victim.distribution(obs + eps * attack.action(obs)).mean.data
            noise = tiny_victim.distribution(
                obs + eps * rng.uniform(-1, 1, 11)).mean.data
        # tiny 2-iteration victims have nearly flat policies; require only
        # that the PGD direction is competitive with random noise
        assert np.linalg.norm(pgd - base) >= 0.2 * np.linalg.norm(noise - base)

    def test_leaves_no_victim_gradients(self, tiny_victim, rng):
        PgdAttack(tiny_victim, steps=2).action(rng.standard_normal(11))
        assert all(p.grad is None for p in tiny_victim.parameters())

    def test_usable_in_harness(self, tiny_victim):
        attack = PgdAttack(tiny_victim, steps=2, seed=0)
        ev = evaluate_single_agent(envs.make("Hopper-v0"), tiny_victim, attack,
                                   epsilon=0.3, episodes=2, seed=5)
        assert len(ev.episode_rewards) == 2


class TestCriticPgd:
    def test_decreases_value_estimate(self, tiny_victim, rng):
        from repro import nn
        attack = CriticPgdAttack(tiny_victim, steps=5, seed=0)
        obs = rng.standard_normal(11)
        eps = 0.5
        delta = attack.action(obs)
        with nn.no_grad():
            v_clean = float(tiny_victim.critic(obs).data.item())
            v_adv = float(tiny_victim.critic(obs + eps * delta).data.item())
        assert v_adv <= v_clean + 1e-6


class TestStrategicTiming:
    def test_fraction_validated(self, tiny_victim):
        with pytest.raises(ValueError):
            StrategicallyTimedAttack(tiny_victim, PgdAttack(tiny_victim),
                                     attack_fraction=0.0)

    def test_attacks_only_critical_steps(self, tiny_victim, rng):
        inner = PgdAttack(tiny_victim, steps=1, seed=0)
        calib = rng.standard_normal((200, 11))
        timed = StrategicallyTimedAttack(tiny_victim, inner, attack_fraction=0.3,
                                         calibration_obs=calib)
        actions = np.array([timed.action(o) for o in calib])
        active = (np.abs(actions).max(axis=1) > 0).mean()
        assert 0.05 <= active <= 0.6  # roughly the configured fraction

    def test_zero_below_threshold(self, tiny_victim):
        inner = PgdAttack(tiny_victim, steps=1, seed=0)
        timed = StrategicallyTimedAttack(tiny_victim, inner, attack_fraction=0.5)
        timed._threshold = np.inf
        np.testing.assert_array_equal(timed.action(np.zeros(11)), np.zeros(11))


class TestRendering:
    def test_locomotion_trace(self):
        from repro.eval import render_locomotion_trace
        out = render_locomotion_trace([1.0, 1.1, 1.0, 0.8], [0.0, 0.2, -0.2, 0.5],
                                      fell=True)
        assert "FELL" in out and "X" in out

    def test_empty_trace(self):
        from repro.eval import render_locomotion_trace
        assert "empty" in render_locomotion_trace([], [], fell=False)

    def test_arena(self):
        from repro.eval import render_arena
        out = render_arena(
            {"r": [np.array([0.0, 0.0]), np.array([1.0, 1.0])],
             "b": [np.array([-1.0, -1.0])]},
            bounds=(-2, 2, -2, 2), events={"X": np.array([1.0, 1.0])})
        assert "r" in out and "b" in out and "X" in out

    def test_arena_rejects_long_glyph(self):
        from repro.eval import render_arena
        with pytest.raises(ValueError):
            render_arena({"ab": [np.zeros(2)]}, bounds=(-1, 1, -1, 1))


class TestMultiSeed:
    def test_outcome_selects_best(self):
        from repro.eval.harness import AttackEvaluation
        from repro.experiments.multiseed import MultiSeedOutcome

        outcome = MultiSeedOutcome(attack="imap-r")
        for reward in (5.0, 1.0, 3.0):
            ev = AttackEvaluation(episode_rewards=[reward],
                                  episode_successes=[False], episode_lengths=[1])
            outcome.evaluations.append(ev)
            outcome.results.append(None)
        assert outcome.best_index == 1
        assert outcome.best.mean_reward == 1.0
        assert outcome.median_reward == 3.0
        assert outcome.seed_spread == 4.0
