"""White-box gradient attack baselines (PGD family, strategic timing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import envs
from repro.attacks import CriticPgdAttack, PgdAttack, StrategicallyTimedAttack
from repro.eval import evaluate_single_agent


class TestPgdAttack:
    def test_output_in_unit_cube(self, tiny_victim, rng):
        attack = PgdAttack(tiny_victim, steps=3)
        obs = rng.standard_normal(11)
        delta = attack.action(obs)
        assert delta.shape == (11,)
        assert np.abs(delta).max() <= 1.0 + 1e-12

    def test_shifts_victim_action(self, tiny_victim, rng):
        """The PGD direction should shift the victim more than noise does."""
        from repro import nn
        attack = PgdAttack(tiny_victim, steps=5, seed=0)
        obs = rng.standard_normal(11)
        eps = 0.5
        # The attack itself must run OUTSIDE no_grad — inside, its PGD
        # steps get no input gradient (the dead-graph condition, which
        # now raises instead of silently returning the random init).
        delta = attack.action(obs)
        with nn.no_grad():
            base = tiny_victim.distribution(obs).mean.data
            pgd = tiny_victim.distribution(obs + eps * delta).mean.data
            noise = tiny_victim.distribution(
                obs + eps * rng.uniform(-1, 1, 11)).mean.data
        # tiny 2-iteration victims have nearly flat policies; require only
        # that the PGD direction is competitive with random noise
        assert np.linalg.norm(pgd - base) >= 0.2 * np.linalg.norm(noise - base)

    def test_leaves_no_victim_gradients(self, tiny_victim, rng):
        PgdAttack(tiny_victim, steps=2).action(rng.standard_normal(11))
        assert all(p.grad is None for p in tiny_victim.parameters())

    def test_usable_in_harness(self, tiny_victim):
        attack = PgdAttack(tiny_victim, steps=2, seed=0)
        ev = evaluate_single_agent(envs.make("Hopper-v0"), tiny_victim, attack,
                                   epsilon=0.3, episodes=2, seed=5)
        assert len(ev.episode_rewards) == 2


class TestCriticPgd:
    def test_decreases_value_estimate(self, tiny_victim, rng):
        from repro import nn
        attack = CriticPgdAttack(tiny_victim, steps=5, seed=0)
        obs = rng.standard_normal(11)
        eps = 0.5
        delta = attack.action(obs)
        with nn.no_grad():
            v_clean = float(tiny_victim.critic(obs).data.item())
            v_adv = float(tiny_victim.critic(obs + eps * delta).data.item())
        assert v_adv <= v_clean + 1e-6


class TestStrategicTiming:
    def test_fraction_validated(self, tiny_victim):
        with pytest.raises(ValueError):
            StrategicallyTimedAttack(tiny_victim, PgdAttack(tiny_victim),
                                     attack_fraction=0.0)

    def test_attacks_only_critical_steps(self, tiny_victim, rng):
        inner = PgdAttack(tiny_victim, steps=1, seed=0)
        calib = rng.standard_normal((200, 11))
        timed = StrategicallyTimedAttack(tiny_victim, inner, attack_fraction=0.3,
                                         calibration_obs=calib)
        actions = np.array([timed.action(o) for o in calib])
        active = (np.abs(actions).max(axis=1) > 0).mean()
        assert 0.05 <= active <= 0.6  # roughly the configured fraction

    def test_zero_below_threshold(self, tiny_victim):
        inner = PgdAttack(tiny_victim, steps=1, seed=0)
        timed = StrategicallyTimedAttack(tiny_victim, inner, attack_fraction=0.5)
        timed._threshold = np.inf
        np.testing.assert_array_equal(timed.action(np.zeros(11)), np.zeros(11))


class TestRendering:
    def test_locomotion_trace(self):
        from repro.eval import render_locomotion_trace
        out = render_locomotion_trace([1.0, 1.1, 1.0, 0.8], [0.0, 0.2, -0.2, 0.5],
                                      fell=True)
        assert "FELL" in out and "X" in out

    def test_empty_trace(self):
        from repro.eval import render_locomotion_trace
        assert "empty" in render_locomotion_trace([], [], fell=False)

    def test_arena(self):
        from repro.eval import render_arena
        out = render_arena(
            {"r": [np.array([0.0, 0.0]), np.array([1.0, 1.0])],
             "b": [np.array([-1.0, -1.0])]},
            bounds=(-2, 2, -2, 2), events={"X": np.array([1.0, 1.0])})
        assert "r" in out and "b" in out and "X" in out

    def test_arena_rejects_long_glyph(self):
        from repro.eval import render_arena
        with pytest.raises(ValueError):
            render_arena({"ab": [np.zeros(2)]}, bounds=(-1, 1, -1, 1))


class TestMultiSeed:
    def test_outcome_selects_best(self):
        from repro.eval.harness import AttackEvaluation
        from repro.experiments.multiseed import MultiSeedOutcome

        outcome = MultiSeedOutcome(attack="imap-r")
        for reward in (5.0, 1.0, 3.0):
            ev = AttackEvaluation(episode_rewards=[reward],
                                  episode_successes=[False], episode_lengths=[1])
            outcome.evaluations.append(ev)
            outcome.results.append(None)
        assert outcome.best_index == 1
        assert outcome.best.mean_reward == 1.0
        assert outcome.median_reward == 3.0
        assert outcome.seed_spread == 4.0


class _DetachedVictim:
    """Wrapper whose forward passes silently drop the input graph.

    Reproduces the classic dead-graph failure: the attack's perturbed
    Tensor is converted back to numpy before the victim sees it, so
    ``backward()`` never reaches ``x`` and ``x.grad`` stays None.
    """

    def __init__(self, victim):
        self._victim = victim

    def __getattr__(self, name):
        return getattr(self._victim, name)

    def _detach(self, x):
        from repro.nn import Tensor

        return np.asarray(x.data if isinstance(x, Tensor) else x)

    def distribution(self, x):
        return self._victim.distribution(self._detach(x))

    def critic(self, x):
        return self._victim.critic(self._detach(x))


class TestDeadGraphDetection:
    """A detached victim graph must raise, not silently no-op (bugfix)."""

    def test_pgd_raises_on_detached_graph(self, tiny_victim, rng):
        attack = PgdAttack(_DetachedVictim(tiny_victim), steps=3, seed=0)
        with pytest.raises(RuntimeError, match="zero or absent input gradient"):
            attack.action(rng.standard_normal(11))

    def test_critic_pgd_raises_on_detached_graph(self, tiny_victim, rng):
        attack = CriticPgdAttack(_DetachedVictim(tiny_victim), steps=3, seed=0)
        with pytest.raises(RuntimeError, match="zero or absent input gradient"):
            attack.action(rng.standard_normal(11))

    def test_dead_graph_counter_fires(self, tiny_victim, rng):
        from repro.telemetry import Telemetry, use_telemetry

        telemetry = Telemetry.in_memory()
        attack = PgdAttack(_DetachedVictim(tiny_victim), steps=2, seed=0)
        with use_telemetry(telemetry):
            with pytest.raises(RuntimeError):
                attack.action(rng.standard_normal(11))
        assert telemetry.metrics.counter("attacks.pgd.dead_graph").value == 1

    def test_live_graph_unaffected(self, tiny_victim, rng):
        """The guard must not fire when gradients flow normally."""
        delta = PgdAttack(tiny_victim, steps=3, seed=0).action(
            rng.standard_normal(11))
        assert np.abs(delta).max() <= 1.0 + 1e-12


class TestLazySelfCalibration:
    """Uncalibrated STA must track attack_fraction, not attack 100% (bugfix)."""

    def test_attack_rate_tracks_fraction(self, tiny_victim, rng):
        inner = PgdAttack(tiny_victim, steps=1, seed=0)
        timed = StrategicallyTimedAttack(tiny_victim, inner, attack_fraction=0.3,
                                         calibration_steps=128)
        obs = rng.standard_normal((600, 11))
        actions = np.array([timed.action(o) for o in obs])
        active = (np.abs(actions).max(axis=1) > 0).mean()
        assert 0.1 <= active <= 0.5  # ~attack_fraction, NOT ~1.0
        assert timed.threshold is not None

    def test_calibration_recorded_for_reproducibility(self, tiny_victim, rng):
        inner = PgdAttack(tiny_victim, steps=1, seed=0)
        timed = StrategicallyTimedAttack(tiny_victim, inner, attack_fraction=0.3,
                                         calibration_steps=16)
        assert timed.calibration is None
        for o in rng.standard_normal((16, 11)):
            timed.action(o)
        assert timed.calibration == {
            "threshold": timed.threshold,
            "n_obs": 16,
            "attack_fraction": 0.3,
            "source": "lazy",
        }

    def test_explicit_calibration_recorded(self, tiny_victim, rng):
        inner = PgdAttack(tiny_victim, steps=1, seed=0)
        timed = StrategicallyTimedAttack(tiny_victim, inner, attack_fraction=0.3,
                                         calibration_obs=rng.standard_normal((32, 11)))
        assert timed.calibration["source"] == "explicit"
        assert timed.calibration["n_obs"] == 32

    def test_calibration_steps_validated(self, tiny_victim):
        with pytest.raises(ValueError):
            StrategicallyTimedAttack(tiny_victim, PgdAttack(tiny_victim),
                                     calibration_steps=0)
