"""The single-value-head ablation path through the adversary trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro import envs
from repro.attacks import AttackConfig, StatePerturbationEnv, train_imap


@pytest.mark.slow
class TestSingleValueHead:
    def test_single_head_policy_has_one_critic(self, tiny_victim):
        adv_env = StatePerturbationEnv(envs.make("Hopper-v0"), tiny_victim, epsilon=0.3)
        config = AttackConfig(iterations=2, steps_per_iteration=128,
                              hidden_sizes=(8,), seed=0, single_value_head=True)
        result = train_imap(adv_env, "sc", config)
        assert not result.policy.dual_value
        assert len(result.history) == 2

    def test_dual_head_is_default(self, tiny_victim):
        adv_env = StatePerturbationEnv(envs.make("Hopper-v0"), tiny_victim, epsilon=0.3)
        config = AttackConfig(iterations=1, steps_per_iteration=128,
                              hidden_sizes=(8,), seed=0)
        result = train_imap(adv_env, "sc", config)
        assert result.policy.dual_value

    def test_single_head_still_uses_intrinsic(self, tiny_victim):
        """Folded intrinsic rewards must reach the extrinsic channel."""
        from repro.attacks.imap.regularizers import StateCoverageRegularizer
        from repro.attacks.trainer import AdversaryTrainer, collect_adversary_rollout

        config = AttackConfig(iterations=1, steps_per_iteration=128,
                              hidden_sizes=(8,), seed=0, single_value_head=True)
        adv_env = StatePerturbationEnv(envs.make("Hopper-v0"), tiny_victim, epsilon=0.3)
        trainer = AdversaryTrainer(adv_env, config,
                                   regularizer=StateCoverageRegularizer(config))
        adv_env.seed(0)
        rollout = collect_adversary_rollout(adv_env, trainer.policy, 64, trainer.rng)
        before = rollout.rewards.copy()
        intrinsic = trainer.regularizer.compute(rollout, trainer.policy)
        assert intrinsic.shape == before.shape
        assert not np.allclose(intrinsic, 0.0)
