"""AdversaryTrainer mechanics: rollout collection, BR schedule, history,
best-checkpoint selection, and the attack entry points."""

from __future__ import annotations

import numpy as np
import pytest

from repro import envs
from repro.attacks import (
    AttackConfig,
    DenseRewardAdversaryWrapper,
    OpponentEnv,
    StatePerturbationEnv,
    collect_adversary_rollout,
    train_apmarl,
    train_imap,
    train_sarl,
)
from repro.attacks.trainer import AdversaryTrainer
from repro.rl import ActorCritic


@pytest.fixture
def adv_env(tiny_victim):
    return StatePerturbationEnv(envs.make("Hopper-v0"), tiny_victim, epsilon=0.3)


def tiny_config(**kw):
    defaults = dict(iterations=2, steps_per_iteration=128, hidden_sizes=(8,), seed=0)
    defaults.update(kw)
    return AttackConfig(**defaults)


class TestCollectRollout:
    def test_rollout_shapes(self, adv_env, rng):
        policy = ActorCritic(11, 11, hidden_sizes=(8,), rng=rng)
        adv_env.seed(0)
        rollout = collect_adversary_rollout(adv_env, policy, 100, rng)
        assert len(rollout) == 100
        assert rollout.knn_victim.shape == (100, 11)
        assert rollout.obs.shape == (100, 11)
        assert len(rollout.episode_rewards) == len(rollout.episode_successes)

    def test_j_ap_estimate(self, adv_env, rng):
        policy = ActorCritic(11, 11, hidden_sizes=(8,), rng=rng)
        adv_env.seed(0)
        rollout = collect_adversary_rollout(adv_env, policy, 300, rng)
        assert -1.0 <= rollout.j_ap <= 0.0
        assert 0.0 <= rollout.victim_success_rate <= 1.0

    def test_frozen_collection_leaves_normalizer_untouched(self, adv_env, rng):
        """update_normalizer=False must also cover the bootstrap-value
        forwards (episode truncation / buffer end), which used to fall
        back to policy.act's own default and ignore the caller's flag."""
        policy = ActorCritic(11, 11, hidden_sizes=(8,), rng=rng)
        # give the normalizer non-trivial stats first, then freeze-collect
        adv_env.seed(0)
        collect_adversary_rollout(adv_env, policy, 64, rng, update_normalizer=True)
        before = policy.normalizer.rms.state()
        adv_env.seed(1)
        rollout = collect_adversary_rollout(adv_env, policy, 200, rng,
                                            update_normalizer=False)
        assert rollout.dones.sum() > 0  # bootstrap forwards actually ran
        after = policy.normalizer.rms.state()
        for key in before:
            np.testing.assert_array_equal(after[key], before[key], err_msg=key)

    def test_bootstrap_forwards_update_normalizer_when_enabled(self, adv_env, rng):
        """With update_normalizer=True every observation the policy sees —
        bootstrap obs included — feeds the running statistics, so the
        count grows by more than the step count whenever episodes end."""
        policy = ActorCritic(11, 11, hidden_sizes=(8,), rng=rng)
        adv_env.seed(0)
        count_before = policy.normalizer.rms.count
        rollout = collect_adversary_rollout(adv_env, policy, 200, rng,
                                            update_normalizer=True)
        observed = policy.normalizer.rms.count - count_before
        assert rollout.dones.sum() > 0
        assert observed > len(rollout)


class TestRolloutTelemetry:
    def test_zero_elapsed_clock_yields_rfc8259_jsonl(self, adv_env, rng, tmp_path):
        """A frozen injected clock used to put steps_per_s: Infinity in
        the JSONL stream — not valid RFC 8259 JSON.  It must be null."""
        import json

        from repro.telemetry import JsonlEventSink, ManualClock, Telemetry

        path = tmp_path / "events.jsonl"
        telemetry = Telemetry(sink=JsonlEventSink(path, buffer_size=1),
                              clock=ManualClock(0.0, auto_tick=0.0))
        policy = ActorCritic(11, 11, hidden_sizes=(8,), rng=rng)
        adv_env.seed(0)
        collect_adversary_rollout(adv_env, policy, 32, rng, telemetry=telemetry)
        telemetry.sink.close()
        lines = path.read_text().strip().splitlines()
        events = [json.loads(line, parse_constant=pytest.fail) for line in lines]
        complete = [e for e in events if e["type"] == "rollout.complete"]
        assert complete and complete[0]["perf"]["steps_per_s"] is None
        assert complete[0]["perf"]["seconds"] == 0.0

    def test_positive_elapsed_clock_reports_rate(self, adv_env, rng):
        from repro.telemetry import ManualClock, Telemetry

        telemetry = Telemetry.in_memory(clock=ManualClock(0.0, auto_tick=0.5))
        policy = ActorCritic(11, 11, hidden_sizes=(8,), rng=rng)
        adv_env.seed(0)
        collect_adversary_rollout(adv_env, policy, 32, rng, telemetry=telemetry)
        perf = [e for e in telemetry.sink.events
                if e["type"] == "rollout.complete"][0]["perf"]
        assert perf["steps_per_s"] == pytest.approx(32 / perf["seconds"])


class TestTrainerLoop:
    def test_sarl_history_fields(self, adv_env):
        result = train_sarl(adv_env, tiny_config())
        assert result.name == "SA-RL"
        assert len(result.history) == 2
        for key in ("j_ap", "asr", "victim_success_rate", "mean_victim_reward",
                    "tau", "samples"):
            assert key in result.history[0]
        assert result.history[0]["tau"] == 0.0  # no regularizer

    def test_imap_uses_intrinsic(self, adv_env):
        result = train_imap(adv_env, "sc", tiny_config())
        assert result.name == "IMAP-SC"
        assert result.history[0]["tau"] == 1.0
        assert result.policy.dual_value

    def test_imap_br_name_and_lambda(self, adv_env):
        result = train_imap(adv_env, "pc", tiny_config(iterations=3),
                            use_bias_reduction=True)
        assert result.name == "IMAP-PC+BR"
        assert all(h["lambda"] >= 0.0 for h in result.history)

    def test_dense_reward_wrapper(self, adv_env):
        wrapped = DenseRewardAdversaryWrapper(adv_env, scale=0.01)
        wrapped.reset(seed=0)
        _, reward, _, _, info = wrapped.step(np.zeros(11))
        assert reward == pytest.approx(-0.01 * info["victim_reward"])

    def test_sarl_dense_variant_name(self, adv_env):
        result = train_sarl(adv_env, tiny_config(), use_dense_reward=True)
        assert result.name == "SA-RL(dense)"

    def test_curve_extraction(self, adv_env):
        result = train_sarl(adv_env, tiny_config(iterations=3))
        x, y = result.curve("asr")
        assert len(x) == len(y) == 3
        assert (np.diff(x) > 0).all()  # cumulative samples increase

    def test_callback(self, adv_env):
        seen = []
        train_sarl(adv_env, tiny_config(), callback=lambda i, p, r: seen.append(i))
        assert seen == [0, 1]

    def test_apmarl_on_game(self, rng):
        victim = ActorCritic(14, 3, hidden_sizes=(8,), rng=rng)
        adv_env = OpponentEnv(envs.make_game("YouShallNotPass-v0"), victim, seed=0)
        result = train_apmarl(adv_env, tiny_config())
        assert result.name == "AP-MARL"
        assert len(result.history) == 2

    def test_imap_multiagent_regularizers(self, rng):
        victim = ActorCritic(14, 3, hidden_sizes=(8,), rng=rng)
        for reg in ("sc", "pc", "r", "d"):
            adv_env = OpponentEnv(envs.make_game("YouShallNotPass-v0"), victim, seed=0)
            result = train_imap(adv_env, reg, tiny_config(), multi_agent=True)
            assert len(result.history) == 2, reg


class TestBiasReduction:
    def _trainer(self, adv_env, eta=0.5):
        from repro.attacks.imap.regularizers import StateCoverageRegularizer
        config = tiny_config(use_bias_reduction=True, br_eta=eta)
        return AdversaryTrainer(adv_env, config,
                                regularizer=StateCoverageRegularizer(config))

    def test_lambda_grows_when_objective_drops(self, adv_env):
        trainer = self._trainer(adv_env, eta=1.0)
        trainer._bias_reduction_step(-0.2)   # first estimate: no update
        assert trainer.tau == 1.0
        trainer._bias_reduction_step(-0.8)   # J dropped by 0.6 -> lambda += 0.6
        assert trainer._lambda == pytest.approx(0.6)
        assert trainer.tau == pytest.approx(1.0 / 1.6)

    def test_lambda_clamped_at_zero(self, adv_env):
        trainer = self._trainer(adv_env, eta=1.0)
        trainer._bias_reduction_step(-0.9)
        trainer._bias_reduction_step(-0.1)   # J improved: lambda would go negative
        assert trainer._lambda == 0.0
        assert trainer.tau == 1.0

    def test_eta_scales_update(self, adv_env):
        trainer = self._trainer(adv_env, eta=0.1)
        trainer._bias_reduction_step(-0.2)
        trainer._bias_reduction_step(-0.7)
        assert trainer._lambda == pytest.approx(0.05)


class TestBestCheckpointSelection:
    def test_best_state_restored(self, adv_env):
        config = tiny_config(iterations=3, select_best=True)
        trainer = AdversaryTrainer(adv_env, config)
        # monkey-ish: force distinct asr per iteration through history
        result = trainer.train()
        assert trainer._best_state is not None or all(
            len(h) for h in result.history)

    def test_select_best_disabled(self, adv_env):
        config = tiny_config(select_best=False)
        trainer = AdversaryTrainer(adv_env, config)
        trainer.train()
        assert trainer._best_state is None

    def test_standardize(self):
        x = np.array([1.0, 2.0, 3.0])
        out = AdversaryTrainer._standardize(x)
        assert out.mean() == pytest.approx(0.0)
        assert out.std() == pytest.approx(1.0)
        constant = AdversaryTrainer._standardize(np.full(4, 2.0))
        np.testing.assert_allclose(constant, np.zeros(4))
