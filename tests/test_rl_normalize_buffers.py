"""Running statistics, normalizers, GAE buffers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.rl import (
    ObservationNormalizer,
    RewardNormalizer,
    RolloutBuffer,
    RunningMeanStd,
    compute_gae,
)


class TestRunningMeanStd:
    def test_matches_numpy_batched(self, rng):
        rms = RunningMeanStd((4,))
        data = rng.standard_normal((500, 4)) * 3.0 + 2.0
        for chunk in np.array_split(data, 7):
            rms.update(chunk)
        # the 1e-4 initial pseudo-count introduces a tiny, harmless bias
        np.testing.assert_allclose(rms.mean, data.mean(axis=0), atol=1e-5)
        np.testing.assert_allclose(rms.var, data.var(axis=0), rtol=1e-3)

    def test_single_sample_update(self):
        rms = RunningMeanStd((2,))
        rms.update(np.array([1.0, 2.0]))
        np.testing.assert_allclose(rms.mean, [1.0, 2.0], atol=1e-3)

    def test_state_roundtrip(self, rng):
        rms = RunningMeanStd((3,))
        rms.update(rng.standard_normal((50, 3)))
        clone = RunningMeanStd((3,))
        clone.load(rms.state())
        np.testing.assert_array_equal(clone.mean, rms.mean)
        np.testing.assert_array_equal(clone.var, rms.var)
        assert clone.count == rms.count


class TestObservationNormalizer:
    def test_output_standardized(self, rng):
        norm = ObservationNormalizer((3,))
        data = rng.standard_normal((2000, 3)) * 5.0 + 10.0
        outs = np.array([norm(row) for row in data])
        assert abs(outs[-500:].mean()) < 0.3
        assert abs(outs[-500:].std() - 1.0) < 0.3

    def test_freeze_stops_updates(self, rng):
        norm = ObservationNormalizer((2,))
        norm(np.array([1.0, 1.0]))
        norm.freeze()
        count = norm.rms.count
        norm(np.array([100.0, 100.0]))
        assert norm.rms.count == count

    def test_clipping(self):
        norm = ObservationNormalizer((1,), clip=2.0)
        norm(np.array([0.0]))
        out = norm(np.array([1e9]), update=False)
        assert out[0] == 2.0

    def test_update_false_leaves_stats(self):
        norm = ObservationNormalizer((1,))
        norm(np.array([5.0]))
        count = norm.rms.count
        norm(np.array([7.0]), update=False)
        assert norm.rms.count == count


class TestRewardNormalizer:
    def test_scales_to_unit_order(self, rng):
        norm = RewardNormalizer(gamma=0.99)
        outs = [norm(float(r), done=False) for r in rng.standard_normal(500) * 50.0]
        assert np.abs(np.array(outs[-100:])).mean() < 5.0

    def test_done_resets_return(self):
        norm = RewardNormalizer(gamma=0.99)
        norm(10.0, done=True)
        assert norm._ret == 0.0


def brute_force_gae(rewards, values, boundary, bootstrap, gamma, lam):
    n = len(rewards)
    adv = np.zeros(n)
    for t in range(n):
        coeff, total, k = 1.0, 0.0, t
        while True:
            delta = rewards[k] + gamma * bootstrap[k] - values[k]
            total += coeff * delta
            if boundary[k] >= 0.5 or k == n - 1:
                break
            coeff *= gamma * lam
            k += 1
        adv[t] = total
    return adv


class TestGAE:
    def test_matches_brute_force(self, rng):
        n = 30
        rewards = rng.standard_normal(n)
        values = rng.standard_normal(n)
        boundary = (rng.random(n) < 0.2).astype(float)
        boundary[-1] = 1.0
        bootstrap = rng.standard_normal(n) * (1.0 - boundary) + 0.0
        adv, ret = compute_gae(rewards, values, boundary, bootstrap, 0.95, 0.9)
        expected = brute_force_gae(rewards, values, boundary, bootstrap, 0.95, 0.9)
        np.testing.assert_allclose(adv, expected, atol=1e-10)
        np.testing.assert_allclose(ret, expected + values, atol=1e-10)

    def test_single_terminated_step(self):
        adv, ret = compute_gae(np.array([2.0]), np.array([0.5]), np.array([1.0]),
                               np.array([0.0]), 0.99, 0.95)
        np.testing.assert_allclose(adv, [1.5])
        np.testing.assert_allclose(ret, [2.0])

    def test_bootstrap_at_truncation(self):
        # one-step episode, truncated with V(s')=10
        adv, _ = compute_gae(np.array([0.0]), np.array([0.0]), np.array([1.0]),
                             np.array([10.0]), 0.9, 1.0)
        np.testing.assert_allclose(adv, [9.0])


class TestRolloutBuffer:
    def _fill(self, buffer, n, rng, done_at=()):
        for i in range(n):
            done = i in done_at
            buffer.add(rng.standard_normal(3), rng.standard_normal(2), -0.5,
                       reward_e=1.0, value_e=0.3, value_i=0.1, done=done,
                       terminated=done)

    def test_capacity_enforced(self, rng):
        buf = RolloutBuffer(4, 3, 2)
        self._fill(buf, 4, rng)
        assert buf.full
        with pytest.raises(RuntimeError):
            buf.add(np.zeros(3), np.zeros(2), 0.0, 0.0, 0.0)

    def test_finish_shapes(self, rng):
        buf = RolloutBuffer(8, 3, 2)
        self._fill(buf, 8, rng, done_at=(3,))
        batch = buf.finish(0.99, 0.95)
        for key in ("obs", "actions", "log_probs", "advantages_e",
                    "advantages_i", "returns_e", "returns_i"):
            assert len(batch[key]) == 8, key

    def test_intrinsic_rewards_injection(self, rng):
        buf = RolloutBuffer(5, 3, 2)
        self._fill(buf, 5, rng)
        buf.set_intrinsic_rewards(np.arange(5.0))
        np.testing.assert_array_equal(buf.rewards_i[:5], np.arange(5.0))
        with pytest.raises(ValueError):
            buf.set_intrinsic_rewards(np.zeros(3))

    def test_termination_zeroes_bootstrap(self, rng):
        buf = RolloutBuffer(2, 1, 1)
        buf.add(np.zeros(1), np.zeros(1), 0.0, reward_e=1.0, value_e=5.0,
                done=True, terminated=True)
        buf.add(np.zeros(1), np.zeros(1), 0.0, reward_e=1.0, value_e=5.0,
                done=True, terminated=True)
        batch = buf.finish(1.0, 1.0)
        # delta = r - V at terminations
        np.testing.assert_allclose(batch["advantages_e"], [-4.0, -4.0])

    def test_mid_episode_bootstrap_uses_next_value(self, rng):
        buf = RolloutBuffer(2, 1, 1)
        buf.add(np.zeros(1), np.zeros(1), 0.0, reward_e=0.0, value_e=1.0)
        buf.add(np.zeros(1), np.zeros(1), 0.0, reward_e=0.0, value_e=3.0)
        buf.set_bootstrap(1, 7.0)
        batch = buf.finish(1.0, 0.0)  # lam 0: adv = delta
        np.testing.assert_allclose(batch["advantages_e"], [2.0, 4.0])

    def test_reset_clears(self, rng):
        buf = RolloutBuffer(3, 2, 1)
        self._fill_small(buf)
        buf.reset()
        assert len(buf) == 0

    def _fill_small(self, buf):
        buf.add(np.zeros(2), np.zeros(1), 0.0, 1.0, 0.0)


@settings(max_examples=25, deadline=None)
@given(arrays(np.float64, 12, elements=st.floats(-3, 3)),
       arrays(np.float64, 12, elements=st.floats(-3, 3)),
       st.floats(0.5, 0.999), st.floats(0.0, 1.0))
def test_property_gae_matches_brute_force(rewards, values, gamma, lam):
    n = len(rewards)
    boundary = np.zeros(n)
    boundary[5] = 1.0
    boundary[-1] = 1.0
    bootstrap = np.zeros(n)
    adv, _ = compute_gae(rewards, values, boundary, bootstrap, gamma, lam)
    expected = brute_force_gae(rewards, values, boundary, bootstrap, gamma, lam)
    np.testing.assert_allclose(adv, expected, atol=1e-9)
