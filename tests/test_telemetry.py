"""Telemetry subsystem: metrics, events, manifests, profiling, wiring."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro import envs
from repro.attacks import AttackConfig, StatePerturbationEnv
from repro.attacks.trainer import AdversaryTrainer
from repro.attacks.imap.regularizers import make_regularizer
from repro.rl import TrainConfig, train_ppo
from repro.runtime import Job, run_parallel
from repro.telemetry import (
    EVENTS_NAME,
    MANIFEST_NAME,
    EwmaTimer,
    Histogram,
    JsonlEventSink,
    ManualClock,
    MemoryEventSink,
    MetricsRegistry,
    RunManifest,
    Telemetry,
    current_telemetry,
    package_versions,
    profiled,
    read_jsonl,
    use_telemetry,
)

# --- metrics ------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_and_gauge(self):
        m = MetricsRegistry()
        m.counter("steps").inc()
        m.counter("steps").inc(41)
        m.gauge("kl").set(0.5)
        m.gauge("kl").set(0.25)
        snap = m.snapshot()
        assert snap["counters"]["steps"] == 42.0
        assert snap["gauges"]["kl"] == 0.25

    def test_ewma_timer_smoothing(self):
        t = EwmaTimer(alpha=0.5)
        t.observe(1.0)
        assert t.ewma == 1.0  # first observation seeds the EWMA
        t.observe(3.0)
        assert t.ewma == 2.0
        assert t.mean == 2.0
        assert t.count == 2

    def test_ewma_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            EwmaTimer(alpha=0.0)

    def test_histogram_summary(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        out = h.render()
        assert out["count"] == 4
        assert out["min"] == 1.0 and out["max"] == 4.0
        assert out["mean"] == 2.5
        assert out["p50"] == 2.5
        assert h.quantile(0.0) == 1.0 and h.quantile(1.0) == 4.0

    def test_histogram_sample_cap_keeps_moments(self):
        h = Histogram(max_samples=4)
        for v in range(10):
            h.observe(float(v))
        assert len(h.samples) == 4  # capped
        assert h.count == 10        # moments cover everything
        assert h.max == 9.0

    def test_empty_instruments_render(self):
        assert Histogram().render() == {"count": 0}
        assert math.isnan(EwmaTimer().ewma)
        assert MetricsRegistry().snapshot() == {}

    def test_observe_duration_feeds_both(self):
        m = MetricsRegistry()
        m.observe_duration("x", 0.5)
        snap = m.snapshot()
        assert snap["timers"]["x"]["count"] == 1
        assert snap["histograms"]["x"]["count"] == 1

    def test_snapshot_is_json_safe_and_sorted(self):
        m = MetricsRegistry()
        m.counter("b").inc()
        m.counter("a").inc()
        snap = m.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        json.dumps(snap)  # must not raise


# --- clock --------------------------------------------------------------


class TestManualClock:
    def test_tick_and_auto_tick(self):
        c = ManualClock(10.0)
        assert c.wall() == 10.0
        c.tick(5.0)
        assert c.perf() == 15.0
        auto = ManualClock(0.0, auto_tick=1.0)
        assert [auto.wall(), auto.wall(), auto.perf()] == [0.0, 1.0, 2.0]


# --- event sinks --------------------------------------------------------


class TestJsonlEventSink:
    def test_buffered_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlEventSink(path, buffer_size=100)
        sink.emit({"seq": 0, "type": "a", "payload": {"x": 1}})
        assert not path.exists()  # buffered, file created lazily
        sink.close()
        events = read_jsonl(path)
        assert events == [{"seq": 0, "type": "a", "payload": {"x": 1}}]

    def test_flush_threshold(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlEventSink(path, buffer_size=2)
        sink.emit({"seq": 0})
        sink.emit({"seq": 1})  # hits the threshold
        assert len(read_jsonl(path)) == 2
        sink.close()

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlEventSink(tmp_path / "e.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"seq": 0})

    def test_context_manager(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with JsonlEventSink(path) as sink:
            sink.emit({"seq": 0})
        assert len(read_jsonl(path)) == 1

    def test_memory_sink_payload_filter(self):
        sink = MemoryEventSink()
        sink.emit({"seq": 0, "ts": 1.0, "type": "a", "payload": {"x": 1},
                   "perf": {"s": 0.2}})
        sink.emit({"seq": 1, "ts": 2.0, "type": "b", "payload": {}})
        assert sink.payloads("a") == [{"seq": 0, "type": "a", "payload": {"x": 1}}]
        assert len(sink.payloads()) == 2

    def test_concurrent_producers_never_tear_lines(self, tmp_path):
        """Hammer one sink from many threads: every event lands exactly
        once and no JSONL line is torn or interleaved (the serve worker
        pool writes progress streams this way)."""
        import threading

        path = tmp_path / "events.jsonl"
        sink = JsonlEventSink(path, buffer_size=7)  # force mid-storm flushes
        n_threads, per_thread = 8, 200

        def hammer(tid: int) -> None:
            for i in range(per_thread):
                sink.emit({"type": "t", "payload": {"tid": tid, "i": i,
                                                    "pad": "x" * 64}})

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sink.close()

        # Parse raw lines, not read_jsonl: a torn line must fail loudly.
        lines = path.read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert len(events) == n_threads * per_thread
        seen = {(e["payload"]["tid"], e["payload"]["i"]) for e in events}
        assert len(seen) == n_threads * per_thread

    def test_concurrent_telemetry_seq_unique(self, tmp_path):
        """Telemetry.event() from many threads: seq numbers never repeat."""
        import threading

        telemetry = Telemetry.in_memory()

        def hammer() -> None:
            for _ in range(300):
                telemetry.event("tick")

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seqs = [e["seq"] for e in telemetry.sink.events]
        assert len(seqs) == 6 * 300
        assert len(set(seqs)) == len(seqs)


# --- manifest -----------------------------------------------------------


class TestRunManifest:
    def test_lifecycle_and_roundtrip(self, tmp_path):
        clock = ManualClock(100.0)
        m = RunManifest.create("run1", experiment={"what": ["table1"]},
                               seeds=[0, 1], argv=["prog"], clock=clock)
        assert m.status == "running"
        m.record_job("cell-a", ok=True, duration=1.5)
        m.record_job("cell-b", ok=False, error="ValueError: boom", traceback="tb")
        clock.tick(7.0)
        m.finalize("failed", error="1 job failed", clock=clock,
                   metrics={"counters": {"x": 1.0}})
        path = m.write(tmp_path / MANIFEST_NAME)
        loaded = RunManifest.load(path)
        assert loaded.status == "failed"
        assert loaded.duration == 7.0
        assert loaded.seeds == [0, 1]
        assert loaded.jobs[1]["error"] == "ValueError: boom"
        assert loaded.metrics == {"counters": {"x": 1.0}}
        assert set(loaded.versions) == {"python", "numpy", "scipy", "repro"}

    def test_write_is_atomic_replace(self, tmp_path):
        m = RunManifest.create("run1", clock=ManualClock(0.0))
        path = m.write(tmp_path / MANIFEST_NAME)
        m.finalize("ok", clock=ManualClock(1.0))
        m.write(path)
        assert RunManifest.load(path).status == "ok"
        assert [p.name for p in tmp_path.iterdir()] == [MANIFEST_NAME]  # no temp litter

    def test_package_versions_report_reality(self):
        versions = package_versions()
        assert versions["numpy"] == np.__version__


# --- facade + profiling -------------------------------------------------


class _Profiled:
    def __init__(self, telemetry=None):
        self.telemetry = telemetry

    @profiled("work")
    def work(self, x):
        return x * 2


class TestTelemetryFacade:
    def test_event_envelope_and_seq(self):
        t = Telemetry.in_memory(clock=ManualClock(5.0, auto_tick=1.0))
        t.event("a", payload={"x": 1})
        t.event("b", perf={"s": 0.1})
        first, second = t.sink.events
        assert first == {"seq": 0, "ts": 5.0, "type": "a", "payload": {"x": 1}}
        assert second["seq"] == 1 and second["perf"] == {"s": 0.1}

    def test_timer_uses_injected_clock(self):
        clock = ManualClock(0.0)
        t = Telemetry.in_memory(clock=clock)
        with t.timer("stage") as timer:
            clock.tick(2.5)
        assert timer.seconds == 2.5
        assert t.metrics.ewma("stage").ewma == 2.5

    def test_profiled_records_when_telemetry_present(self):
        t = Telemetry.in_memory(clock=ManualClock(0.0, auto_tick=0.5))
        obj = _Profiled(t)
        assert obj.work(3) == 6
        assert t.metrics.ewma("work").count == 1

    def test_profiled_passthrough_without_telemetry(self):
        assert _Profiled(None).work(3) == 6

    def test_ambient_context(self):
        assert current_telemetry() is None
        t = Telemetry.in_memory()
        with use_telemetry(t):
            assert current_telemetry() is t
            with use_telemetry(None):
                assert current_telemetry() is None
        assert current_telemetry() is None

    def test_exit_failure_finalizes_manifest(self, tmp_path):
        with pytest.raises(RuntimeError):
            with Telemetry.to_dir(tmp_path, run_id="r", clock=ManualClock(0.0)):
                raise RuntimeError("boom")
        manifest = RunManifest.load(tmp_path / MANIFEST_NAME)
        assert manifest.status == "failed"
        assert "RuntimeError: boom" in manifest.error

    def test_to_dir_writes_running_manifest_immediately(self, tmp_path):
        Telemetry.to_dir(tmp_path, run_id="r", clock=ManualClock(0.0))
        assert RunManifest.load(tmp_path / MANIFEST_NAME).status == "running"


# --- schema of a real run -----------------------------------------------


def check_event_schema(events: list[dict]) -> None:
    """Envelope invariants every JSONL trace must satisfy."""
    assert events, "no events recorded"
    for i, event in enumerate(events):
        assert set(event) >= {"seq", "ts", "type", "payload"}, event
        assert event["seq"] == i  # contiguous, strictly increasing
        assert isinstance(event["ts"], float)
        assert isinstance(event["type"], str) and event["type"]
        assert isinstance(event["payload"], dict)


def check_manifest_schema(manifest: RunManifest) -> None:
    assert manifest.status in ("running", "ok", "failed")
    assert set(manifest.versions) == {"python", "numpy", "scipy", "repro"}
    assert manifest.started_at > 0
    for job in manifest.jobs:
        assert set(job) >= {"name", "ok", "duration"}


@pytest.fixture(scope="module")
def small_victim():
    result = train_ppo(envs.make("Hopper-v0"),
                       TrainConfig(iterations=1, steps_per_iteration=256, seed=0))
    result.policy.freeze_normalizer()
    return result.policy


class TestInstrumentedRun:
    def test_attack_run_produces_valid_manifest_and_events(self, tmp_path, small_victim):
        """The acceptance-criteria run: manifest + JSONL with measured
        rollout/update/KNN timings from a real (tiny) IMAP training run."""
        telemetry = Telemetry.to_dir(tmp_path, run_id="imap-test",
                                     experiment={"attack": "imap-pc"}, seeds=[3])
        env = StatePerturbationEnv(envs.make("Hopper-v0"), small_victim,
                                   epsilon=0.6, seed=0)
        config = AttackConfig(iterations=2, steps_per_iteration=128, seed=3)
        trainer = AdversaryTrainer(env, config,
                                   regularizer=make_regularizer("pc", config),
                                   telemetry=telemetry)
        trainer.train()
        telemetry.finalize("ok")

        manifest = RunManifest.load(tmp_path / MANIFEST_NAME)
        check_manifest_schema(manifest)
        assert manifest.status == "ok"
        assert manifest.events_path == EVENTS_NAME
        # measured stage timings made it into the manifest
        timers = manifest.metrics["timers"]
        for stage in ("rollout.collect", "ppo.update", "attack.knn_bonus"):
            assert timers[stage]["count"] >= 2, stage
            assert timers[stage]["total"] > 0.0, stage

        events = read_jsonl(tmp_path / EVENTS_NAME)
        check_event_schema(events)
        types = [e["type"] for e in events]
        assert types.count("rollout.complete") == 2
        assert types.count("attack.iteration") == 2
        iteration = next(e for e in events if e["type"] == "attack.iteration")
        assert {"asr", "j_ap", "tau"} <= set(iteration["payload"])
        assert iteration["perf"]["rollout_s"] > 0.0

    def test_scheduler_records_jobs_and_crashes(self, tmp_path):
        telemetry = Telemetry.to_dir(tmp_path, run_id="sweep", seeds=[0])
        jobs = [Job(fn=_job_ok, args=(2,), name="good"),
                Job(fn=_job_boom, name="bad")]
        report = run_parallel(jobs, max_workers=1, telemetry=telemetry)
        telemetry.finalize("ok" if not report.n_failed else "failed")

        manifest = RunManifest.load(tmp_path / MANIFEST_NAME)
        check_manifest_schema(manifest)
        assert [j["name"] for j in manifest.jobs] == ["good", "bad"]
        assert manifest.jobs[0]["ok"] is True
        assert "RuntimeError" in manifest.jobs[1]["error"]
        assert "injected" in manifest.jobs[1]["traceback"]

        events = read_jsonl(tmp_path / EVENTS_NAME)
        check_event_schema(events)
        finished = [e for e in events if e["type"] == "job.finished"]
        assert [e["payload"]["name"] for e in finished] == ["good", "bad"]
        complete = events[-1]
        assert complete["type"] == "schedule.complete"
        assert complete["payload"] == {"n_jobs": 2, "n_failed": 1}

    def test_scheduler_uses_ambient_telemetry(self):
        t = Telemetry.in_memory()
        with use_telemetry(t):
            run_parallel([Job(fn=_job_ok, args=(1,), name="j")], max_workers=1)
        assert [e["type"] for e in t.sink.events] == ["job.finished",
                                                      "schedule.complete"]

    def test_cli_telemetry_dir_writes_run(self, tmp_path, monkeypatch):
        from repro.experiments import cli

        monkeypatch.setattr(cli, "run_experiment",
                            lambda *a, **k: "stub output")
        assert cli.main(["table1", "--scale", "smoke",
                         "--telemetry-dir", str(tmp_path)]) == 0
        manifest = RunManifest.load(tmp_path / MANIFEST_NAME)
        check_manifest_schema(manifest)
        assert manifest.status == "ok"
        assert manifest.experiment["what"] == ["table1"]
        events = read_jsonl(tmp_path / EVENTS_NAME)
        check_event_schema(events)
        assert [e["type"] for e in events] == ["experiment.start", "experiment.end"]

    def test_cli_default_off_leaves_no_ambient(self, monkeypatch, capsys):
        from repro.experiments import cli

        seen = []
        monkeypatch.setattr(cli, "run_experiment",
                            lambda *a, **k: seen.append(current_telemetry()) or "x")
        assert cli.main(["table1", "--scale", "smoke"]) == 0
        assert seen == [None]


def _job_ok(x, seed=None):
    return x + 1


def _job_boom(seed=None):
    raise RuntimeError("injected crash")
