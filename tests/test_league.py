"""Attack league: spec identity, Elo determinism, cache-hit replay,
execution-lane equivalence, counter-training, and the CLI."""

from __future__ import annotations

import json
import multiprocessing
import time

import numpy as np
import pytest

from repro.league import (
    LeagueConfig,
    MatchOutcome,
    fold_elo,
    leaderboard_bytes,
    league_key,
    match_spec,
    run_league,
)
from repro.league.spec import (
    base_entrant,
    config_from_doc,
    config_to_doc,
    parse_attacker_name,
    parse_victim_name,
)
from repro.store import ArtifactStore, spec_key
from repro.telemetry import Telemetry, use_telemetry

SMALL = dict(attackers=("random", "pgd"), victims=("Hopper-v0:ppo",),
             rounds=1, pgd_steps=2)


def _counter_value(telemetry, name):
    return telemetry.metrics.counter(name).value


class TestElo:
    OUTCOMES = [
        MatchOutcome(round=0, attack="pgd", victim="Hopper-v0:ppo",
                     asr=0.8, victim_reward=10.0),
        MatchOutcome(round=0, attack="random", victim="Hopper-v0:ppo",
                     asr=0.2, victim_reward=90.0),
        MatchOutcome(round=0, attack="pgd", victim="Hopper-v0:atla",
                     asr=0.4, victim_reward=50.0),
        MatchOutcome(round=0, attack="random", victim="Hopper-v0:atla",
                     asr=0.1, victim_reward=95.0),
    ]

    def test_fold_is_input_order_independent(self):
        forward = fold_elo(self.OUTCOMES)
        backward = fold_elo(list(reversed(self.OUTCOMES)))
        assert forward == backward

    def test_fold_is_zero_sum(self):
        ratings = fold_elo(self.OUTCOMES, initial=1000.0)
        assert sum(ratings.values()) == pytest.approx(1000.0 * len(ratings))

    def test_stronger_attacker_rates_higher(self):
        ratings = fold_elo(self.OUTCOMES)
        assert ratings["pgd"] > ratings["random"]
        assert ratings["Hopper-v0:atla"] > ratings["Hopper-v0:ppo"]

    def test_leaderboard_bytes_are_canonical(self):
        doc = {"kind": "league_leaderboard", "b": 1, "a": 2}
        assert leaderboard_bytes(doc) == leaderboard_bytes(
            {"a": 2, "b": 1, "kind": "league_leaderboard"})
        assert leaderboard_bytes(doc).endswith(b"\n")


class TestSpec:
    def test_match_key_excludes_round(self):
        config = LeagueConfig(**SMALL)
        entrant = base_entrant(config, "Hopper-v0:ppo")
        doc = match_spec(config, entrant, "pgd")
        assert "round" not in doc
        assert spec_key(doc) == spec_key(match_spec(config, entrant, "pgd"))

    def test_attack_knobs_enter_identity(self):
        entrant = base_entrant(LeagueConfig(**SMALL), "Hopper-v0:ppo")
        a = match_spec(LeagueConfig(**SMALL), entrant, "pgd")
        b = match_spec(LeagueConfig(**{**SMALL, "pgd_steps": 3}), entrant, "pgd")
        assert spec_key(a) != spec_key(b)
        # ...but only for the attackers they parameterize.
        a = match_spec(LeagueConfig(**SMALL), entrant, "random")
        b = match_spec(LeagueConfig(**{**SMALL, "pgd_steps": 3}), entrant, "random")
        assert spec_key(a) == spec_key(b)

    def test_config_doc_round_trip(self):
        config = LeagueConfig(**{**SMALL, "counter_training": True})
        assert config_from_doc(config_to_doc(config)) == config

    def test_league_key_ignores_roster_order(self):
        ab = LeagueConfig(**{**SMALL, "attackers": ("random", "pgd")})
        ba = LeagueConfig(**{**SMALL, "attackers": ("pgd", "random")})
        assert league_key(ab) == league_key(ba)

    def test_validation(self):
        with pytest.raises(ValueError, match="env_id.*:.*defense"):
            parse_victim_name("Hopper-v0")
        with pytest.raises(ValueError, match="unknown defense"):
            parse_victim_name("Hopper-v0:nope")
        with pytest.raises(ValueError):
            parse_attacker_name("gan")
        with pytest.raises(ValueError, match="rounds"):
            LeagueConfig(**{**SMALL, "rounds": 0})
        with pytest.raises(ValueError, match="scale"):
            LeagueConfig(**{**SMALL, "scale": "galactic"})


class TestLeagueReplay:
    def test_replay_schedules_nothing_and_is_byte_identical(self, tmp_path):
        config = LeagueConfig(**SMALL)
        store = ArtifactStore(tmp_path / "store")
        first_telemetry = Telemetry.in_memory()
        with use_telemetry(first_telemetry):
            first = run_league(config, store=store, out_dir=tmp_path / "out")
        assert first.matches_scheduled == 2
        assert first.matches_cached == 0
        assert first.matches_failed == 0
        assert _counter_value(first_telemetry, "league.matches_scheduled") == 2
        first_bytes = (tmp_path / "out" / "leaderboard.json").read_bytes()
        assert leaderboard_bytes(first.leaderboard) == first_bytes

        replay_telemetry = Telemetry.in_memory()
        with use_telemetry(replay_telemetry):
            replay = run_league(config, store=store, out_dir=tmp_path / "out2")
        assert replay.matches_scheduled == 0
        assert replay.matches_cached == 2
        assert _counter_value(replay_telemetry, "league.matches_scheduled") == 0
        assert _counter_value(replay_telemetry, "league.matches_cached") == 2
        assert _counter_value(replay_telemetry, "store.hits") >= 2
        assert (tmp_path / "out2" / "leaderboard.json").read_bytes() == first_bytes

    def test_pool_lane_matches_inline_bytes(self, tmp_path):
        """Same league, fresh stores, different lanes -> same bytes."""
        from repro.runtime import WorkerPool

        config = LeagueConfig(**SMALL)
        inline = run_league(config, store=ArtifactStore(tmp_path / "s1"),
                            out_dir=tmp_path / "o1", jobs=1)
        spawned = run_league(config, store=ArtifactStore(tmp_path / "s2"),
                             out_dir=tmp_path / "o2", jobs=2)
        with WorkerPool(max_workers=2) as pool:
            pooled = run_league(config, store=ArtifactStore(tmp_path / "s3"),
                                out_dir=tmp_path / "o3", jobs=2, pool=pool)
        assert (inline.matches_scheduled == spawned.matches_scheduled
                == pooled.matches_scheduled == 2)
        assert not spawned.rounds[-1].degraded
        assert not pooled.rounds[-1].degraded
        reference = (tmp_path / "o1" / "leaderboard.json").read_bytes()
        assert (tmp_path / "o2" / "leaderboard.json").read_bytes() == reference
        assert (tmp_path / "o3" / "leaderboard.json").read_bytes() == reference

    def test_counter_training_round(self, tmp_path):
        config = LeagueConfig(attackers=("random",), victims=("Hopper-v0:ppo",),
                              rounds=2, counter_training=True, pgd_steps=2)
        store = ArtifactStore(tmp_path / "store")
        result = run_league(config, store=store, out_dir=tmp_path / "out")
        assert result.rounds[0].counter_entrant == "Hopper-v0:ppo+ct1"
        # Round 2 = base rematch (cached) + counter entrant (scheduled).
        assert result.rounds[1].matches_cached == 1
        assert result.rounds[1].matches_scheduled == 1
        names = {row["name"] for row in result.leaderboard["standings"]}
        assert "Hopper-v0:ppo+ct1" in names
        # Full replay: every match of every round is a cache hit.
        replay = run_league(config, store=store, out_dir=tmp_path / "out2")
        assert replay.matches_scheduled == 0
        assert ((tmp_path / "out" / "leaderboard.json").read_bytes()
                == (tmp_path / "out2" / "leaderboard.json").read_bytes())

    def test_failed_match_is_contained(self, tmp_path, monkeypatch):
        from repro.league import runner as league_runner

        def explode(match, store_root):
            raise RuntimeError("boom")

        monkeypatch.setattr(league_runner, "play_match", explode)
        telemetry = Telemetry.in_memory()
        with use_telemetry(telemetry):
            result = run_league(LeagueConfig(**SMALL),
                                store=ArtifactStore(tmp_path / "store"),
                                out_dir=tmp_path / "out")
        assert result.matches_failed == 2
        assert result.rounds[0].failed_kinds == {"crash": 2}
        assert _counter_value(telemetry, "league.matches_failed") == 2
        assert _counter_value(telemetry, "league.matches_failed.crash") == 2
        # The leaderboard still materializes (empty) instead of crashing.
        assert result.leaderboard["standings"] == []


def _league_fabric_daemon(fabric_dir, worker_id):
    from repro.fabric import FabricQueue, FabricWorker

    queue = FabricQueue(fabric_dir)
    FabricWorker(queue, worker_id=worker_id, supervise=False).work(idle_exit=3.0)


class TestLeagueFabric:
    @pytest.mark.slow
    def test_two_daemon_fabric_matches_inline_bytes(self, tmp_path):
        config = LeagueConfig(**SMALL)
        baseline = run_league(config, store=ArtifactStore(tmp_path / "s1"),
                              out_dir=tmp_path / "o1")
        fork = multiprocessing.get_context("fork")
        fabric = tmp_path / "fabric"
        daemons = [fork.Process(target=_league_fabric_daemon,
                                args=(str(fabric), f"daemon-{i}"))
                   for i in range(2)]
        for daemon in daemons:
            daemon.start()
        try:
            fabbed = run_league(config, store=ArtifactStore(tmp_path / "s2"),
                                out_dir=tmp_path / "o2", fabric_dir=fabric)
        finally:
            for daemon in daemons:
                daemon.join(60.0)
                if daemon.is_alive():
                    daemon.terminate()
        assert baseline.matches_scheduled == fabbed.matches_scheduled == 2
        assert not fabbed.rounds[-1].degraded
        assert ((tmp_path / "o1" / "leaderboard.json").read_bytes()
                == (tmp_path / "o2" / "leaderboard.json").read_bytes())


class TestCli:
    ARGS = ["league", "--attackers", "random", "pgd",
            "--victims", "Hopper-v0:ppo", "--rounds", "1", "--pgd-steps", "2"]

    def test_league_subcommand_and_resume(self, tmp_path, capsys):
        from repro.experiments.cli import main

        store = str(tmp_path / "store")
        out = str(tmp_path / "out")
        assert main(self.ARGS + ["--store-dir", store, "--out", out]) == 0
        output = capsys.readouterr().out
        assert "2 scheduled, 0 cached" in output
        record = json.loads((tmp_path / "out" / "league.json").read_text())
        assert record["config"]["attackers"] == ["random", "pgd"]

        assert main(["league", "--resume", out, "--store-dir", store]) == 0
        output = capsys.readouterr().out
        assert "0 scheduled, 2 cached" in output

    def test_resume_without_record_errors(self, tmp_path):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["league", "--resume", str(tmp_path / "nowhere")])

    def test_pool_and_fabric_exclusive(self, tmp_path):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["league", "--pool", "--fabric", str(tmp_path)])
