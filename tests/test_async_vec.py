"""AsyncVectorEnv unit battery: protocol, parity, faults, cleanup.

The trainer-level three-lane determinism suite lives in
``tests/test_determinism.py``; this file pins the vector-env mechanics:
step/reset/info parity with ``SyncVectorEnv``, lane-exception
propagation without pipe desync, ``WorkerCrash`` on a killed lane,
remote RNG checkpointing, and shared-memory hygiene.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

import numpy as np
import pytest

from repro import envs
from repro.attacks import StatePerturbationEnv
from repro.envs.core import Env
from repro.envs.spaces import Box
from repro.rl import TrainConfig, train_ppo
from repro.runtime import AsyncVectorEnv, SyncVectorEnv
from repro.runtime.shm import default_shm_dir
from repro.runtime.supervisor import WorkerCrash
from repro.runtime.vec_env import LANE_SEED_STRIDE
from repro.store.checkpoint import capture_rng_states, restore_rng_states

EPISODE_LEN = 5


class ScriptedEnv(Env):
    """Deterministic fixed-length episodes with info metadata."""

    def __init__(self, ends_with: str = "terminated"):
        super().__init__()
        self.observation_space = Box(-np.inf, np.inf, (3,))
        self.action_space = Box(-1.0, 1.0, (2,))
        self.ends_with = ends_with
        self._t = 0

    def _reset(self) -> np.ndarray:
        self._t = 0
        return np.zeros(3)

    def step(self, action):
        self._t += 1
        obs = np.full(3, float(self._t))
        ends = self._t >= EPISODE_LEN
        terminated = ends and self.ends_with == "terminated"
        truncated = ends and self.ends_with == "truncated"
        info = {"success": ends, "victim_reward": 2.0}
        return obs, 1.0, terminated, truncated, info


class FaultyEnv(ScriptedEnv):
    """Raises at a specific step; used for lane-exception propagation."""

    def __init__(self, raise_at: int):
        super().__init__()
        self.raise_at = raise_at

    def step(self, action):
        if self._t + 1 == self.raise_at:
            raise ValueError(f"injected lane fault at step {self.raise_at}")
        return super().step(action)


def _shm_segments() -> list[Path]:
    return sorted(Path(default_shm_dir()).glob("repro-shm-*"))


@pytest.fixture(scope="module")
def small_victim():
    result = train_ppo(envs.make("Hopper-v0"),
                       TrainConfig(iterations=1, steps_per_iteration=256, seed=0))
    result.policy.freeze_normalizer()
    return result.policy


def _rollout(vec, steps: int, seed: int = 0):
    """Deterministic action script through a vector env; returns a trace."""
    rng = np.random.default_rng(seed)
    trace = [vec.reset(seed=seed)]
    infos_trace = []
    for _ in range(steps):
        actions = rng.uniform(-1.0, 1.0,
                              size=(len(vec),) + vec.action_space.shape)
        obs, rewards, term, trunc, infos = vec.step(actions)
        trace.extend([obs, rewards, term, trunc])
        infos_trace.append(infos)
    return trace, infos_trace


class TestAsyncSyncParity:
    @pytest.mark.parametrize("ends_with", ["terminated", "truncated"])
    def test_scripted_env_bit_identical(self, ends_with):
        sync = SyncVectorEnv([ScriptedEnv(ends_with) for _ in range(3)])
        vec = AsyncVectorEnv([ScriptedEnv(ends_with) for _ in range(3)])
        try:
            sync_trace, sync_infos = _rollout(sync, 2 * EPISODE_LEN + 1)
            async_trace, async_infos = _rollout(vec, 2 * EPISODE_LEN + 1)
        finally:
            vec.close()
        for s, a in zip(sync_trace, async_trace):
            np.testing.assert_array_equal(s, a)
        # Info parity, including the final_obs auto-reset convention.
        for s_step, a_step in zip(sync_infos, async_infos):
            for s_info, a_info in zip(s_step, a_step):
                assert sorted(s_info) == sorted(a_info)
                for key, value in s_info.items():
                    if isinstance(value, np.ndarray):
                        np.testing.assert_array_equal(value, a_info[key])
                    else:
                        assert a_info[key] == value

    def test_hopper_adversary_bit_identical(self, small_victim):
        def lanes():
            return [StatePerturbationEnv(envs.make("Hopper-v0"), small_victim,
                                         epsilon=0.6)
                    for _ in range(2)]

        sync = SyncVectorEnv(lanes())
        vec = AsyncVectorEnv(lanes())
        try:
            sync_trace, sync_infos = _rollout(sync, 40, seed=11)
            async_trace, async_infos = _rollout(vec, 40, seed=11)
        finally:
            vec.close()
        for s, a in zip(sync_trace, async_trace):
            np.testing.assert_array_equal(s, a)
        for s_step, a_step in zip(sync_infos, async_infos):
            for s_info, a_info in zip(s_step, a_step):
                assert sorted(s_info) == sorted(a_info)

    def test_seed_applies_lane_stride(self):
        single = ScriptedEnv()
        single.seed(123 + LANE_SEED_STRIDE)
        vec = AsyncVectorEnv([ScriptedEnv(), ScriptedEnv()])
        try:
            vec.seed(123)
            states = vec.rng_states()
        finally:
            vec.close()
        lane1 = {key[len("lanes[1]."):]: value for key, value in states.items()
                 if key.startswith("lanes[1].")}
        assert lane1 == capture_rng_states(single)


class TestAsyncFaults:
    def test_lane_exception_propagates_and_lanes_stay_in_sync(self):
        vec = AsyncVectorEnv([ScriptedEnv(), FaultyEnv(raise_at=3)])
        try:
            vec.reset(seed=0)
            actions = np.zeros((2, 2))
            vec.step(actions)
            vec.step(actions)
            with pytest.raises(ValueError, match="injected lane fault"):
                vec.step(actions)
            # The pipes drained cleanly: the healthy lane still answers.
            states = vec.rng_states()
            assert any(key.startswith("lanes[0]") for key in states)
        finally:
            vec.close()

    def test_killed_lane_surfaces_as_worker_crash(self):
        vec = AsyncVectorEnv([ScriptedEnv(), ScriptedEnv()])
        try:
            vec.reset(seed=0)
            os.kill(vec._procs[1].pid, signal.SIGKILL)
            vec._procs[1].join(5.0)
            with pytest.raises(WorkerCrash):
                vec.step(np.zeros((2, 2)))
        finally:
            vec.close()

    def test_mismatched_spaces_rejected(self):
        class OtherEnv(ScriptedEnv):
            def __init__(self):
                super().__init__()
                self.observation_space = Box(-np.inf, np.inf, (4,))

        with pytest.raises(ValueError):
            AsyncVectorEnv([ScriptedEnv(), OtherEnv()])
        assert _shm_segments() == []  # failed init leaves no segment


class TestAsyncRngCheckpoint:
    def test_rng_states_roundtrip_bit_identical(self, small_victim):
        def lanes():
            return [StatePerturbationEnv(envs.make("Hopper-v0"), small_victim,
                                         epsilon=0.6)
                    for _ in range(2)]

        vec = AsyncVectorEnv(lanes())
        try:
            vec.reset(seed=5)
            rng = np.random.default_rng(0)
            acts = rng.uniform(-1, 1, size=(2,) + vec.action_space.shape)
            vec.step(acts)
            # capture_rng_states must take the remote path (duck-typed):
            # the generators live in the lane worker processes.
            states = capture_rng_states(vec)
            assert states and all(key.startswith("lanes[") for key in states)
            vec.step(acts)  # advances every lane generator
            assert capture_rng_states(vec) != states
            restore_rng_states(vec, states)
            assert capture_rng_states(vec) == states  # exact rewind
        finally:
            vec.close()

    def test_sync_and_async_expose_identical_rng_graphs(self, small_victim):
        def lanes():
            return [StatePerturbationEnv(envs.make("Hopper-v0"), small_victim,
                                         epsilon=0.6)
                    for _ in range(2)]

        sync = SyncVectorEnv(lanes())
        vec = AsyncVectorEnv(lanes())
        try:
            sync.reset(seed=5)
            vec.reset(seed=5)
            sync_states = capture_rng_states(sync)
            async_states = capture_rng_states(vec)
        finally:
            vec.close()
        # Same per-lane generator graph, same bit-generator states: a
        # checkpoint's RNG section is backend-portable.  Sync walks the
        # in-process graph (keys "envs[i].path"); async asks the workers
        # (keys "lanes[i].path").
        renamed = {"lanes" + key[len("envs"):]: value
                   for key, value in sync_states.items()}
        assert renamed == async_states


class TestAsyncCleanup:
    def test_no_shm_segment_while_running_or_after_close(self):
        vec = AsyncVectorEnv([ScriptedEnv(), ScriptedEnv()])
        try:
            # The arena file is unlinked as soon as every lane attaches:
            # even SIGKILL against everything cannot leak a segment.
            assert _shm_segments() == []
            vec.reset(seed=0)
        finally:
            vec.close()
        assert _shm_segments() == []
        assert all(not p.is_alive() for p in vec._procs)

    def test_close_is_idempotent(self):
        vec = AsyncVectorEnv([ScriptedEnv()])
        vec.reset(seed=0)
        vec.close()
        vec.close()

    def test_cleanup_survives_sigkilled_lanes(self):
        vec = AsyncVectorEnv([ScriptedEnv(), ScriptedEnv()])
        vec.reset(seed=0)
        for proc in vec._procs:
            os.kill(proc.pid, signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while (any(p.is_alive() for p in vec._procs)
               and time.monotonic() < deadline):
            time.sleep(0.02)
        vec.close()  # reaps the corpses without raising
        assert _shm_segments() == []

    def test_from_factory(self):
        vec = AsyncVectorEnv.from_factory(ScriptedEnv, 3)
        try:
            assert len(vec) == vec.num_envs == 3
            assert vec.reset(seed=0).shape == (3, 3)
        finally:
            vec.close()
