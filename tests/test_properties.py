"""Property-based tests (hypothesis) for the density estimators and
statistics helpers — the numerical bedrock the IMAP bonuses and the
tables' confidence intervals stand on."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.base import knn_feature
from repro.density import KnnDensityEstimator, ParzenDensityEstimator, knn_distances
from repro.eval.metrics import bootstrap_ci

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)


def point_clouds(min_points=2, max_points=24, dim=3):
    """Strategy: (n, dim) float arrays of reference/query points."""
    return st.lists(
        st.lists(finite, min_size=dim, max_size=dim),
        min_size=min_points, max_size=max_points,
    ).map(lambda rows: np.asarray(rows, dtype=np.float64))


# --- KNN ----------------------------------------------------------------


class TestKnnProperties:
    @settings(deadline=None, max_examples=50)
    @given(refs=point_clouds(), queries=point_clouds(max_points=8),
           k=st.integers(1, 6), perm_seed=st.integers(0, 2**32 - 1))
    def test_permutation_invariance(self, refs, queries, k, perm_seed):
        """The k-th NN distance cannot depend on reference ordering."""
        baseline = knn_distances(queries, refs, k=k)
        shuffled = refs[np.random.default_rng(perm_seed).permutation(len(refs))]
        assert np.allclose(baseline, knn_distances(queries, shuffled, k=k))

    @settings(deadline=None, max_examples=50)
    @given(refs=point_clouds(), queries=point_clouds(max_points=8),
           k=st.integers(1, 5))
    def test_monotone_in_k(self, refs, queries, k):
        """The (k+1)-th nearest neighbour is never closer than the k-th."""
        near = knn_distances(queries, refs, k=k)
        far = knn_distances(queries, refs, k=k + 1)
        assert np.all(far >= near)

    @settings(deadline=None, max_examples=50)
    @given(refs=point_clouds(), k=st.integers(1, 5))
    def test_exclude_self_never_shrinks_distance(self, refs, k):
        plain = knn_distances(refs, refs, k=k)
        excl = knn_distances(refs, refs, k=k, exclude_self=True)
        assert np.all(excl >= plain)

    @settings(deadline=None, max_examples=30)
    @given(refs=point_clouds(min_points=3), k=st.integers(1, 5))
    def test_estimator_matches_free_function(self, refs, k):
        estimator = KnnDensityEstimator(refs, k=k)
        assert np.allclose(estimator.distance(refs), knn_distances(refs, refs, k=k))
        dist = estimator.distance(refs)
        assert np.allclose(estimator.density(refs), 1.0 / dist)
        assert np.allclose(estimator.log_density(refs), -np.log(dist))

    def test_distances_clipped_away_from_zero(self):
        refs = np.zeros((5, 3))
        assert np.all(knn_distances(refs, refs, k=2) >= 1e-8)

    def test_empty_references_fall_back_to_one(self):
        out = knn_distances(np.zeros((4, 3)), np.empty((0, 3)), k=3)
        assert np.array_equal(out, np.ones(4))


class TestKnnFeatureFallback:
    @settings(deadline=None, max_examples=30)
    @given(dim=st.integers(1, 16),
           extra=st.dictionaries(st.text(min_size=1, max_size=8), finite,
                                 max_size=4))
    def test_missing_key_yields_zero_vector(self, dim, extra):
        extra.pop("knn_victim", None)
        value = knn_feature(extra, "knn_victim", dim)
        assert value.shape == (dim,)
        assert np.array_equal(value, np.zeros(dim))

    @settings(deadline=None, max_examples=30)
    @given(feature=st.lists(finite, min_size=1, max_size=8))
    def test_present_key_passes_through_as_float64(self, feature):
        value = knn_feature({"knn_victim": feature}, "knn_victim", 99)
        assert value.dtype == np.float64
        assert np.array_equal(value, np.asarray(feature, dtype=np.float64))


# --- Parzen -------------------------------------------------------------


class TestParzenProperties:
    @settings(deadline=None, max_examples=30)
    @given(refs=point_clouds(), queries=point_clouds(max_points=6),
           bandwidth=st.floats(0.1, 10.0), perm_seed=st.integers(0, 2**32 - 1))
    def test_permutation_invariance(self, refs, queries, bandwidth, perm_seed):
        baseline = ParzenDensityEstimator(refs, bandwidth).density(queries)
        shuffled = refs[np.random.default_rng(perm_seed).permutation(len(refs))]
        assert np.allclose(baseline,
                           ParzenDensityEstimator(shuffled, bandwidth).density(queries))

    @settings(deadline=None, max_examples=30)
    @given(refs=point_clouds(), queries=point_clouds(max_points=6),
           bandwidth=st.floats(0.1, 10.0))
    def test_density_positive_and_at_most_one(self, refs, queries, bandwidth):
        density = ParzenDensityEstimator(refs, bandwidth).density(queries)
        assert np.all(density > 0.0)
        assert np.all(density <= 1.0 + 1e-12)  # mean of Gaussian kernels ≤ 1

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            ParzenDensityEstimator(np.zeros((2, 2)), bandwidth=0.0)


# --- bootstrap CI -------------------------------------------------------


class TestBootstrapCiProperties:
    @settings(deadline=None, max_examples=40)
    @given(values=st.lists(finite, min_size=2, max_size=30),
           seed=st.integers(0, 2**31 - 1))
    def test_interval_contains_sample_mean(self, values, seed):
        lo, hi = bootstrap_ci(values, seed=seed)
        mean = float(np.mean(values))
        assert lo <= mean + 1e-9
        assert hi >= mean - 1e-9

    @settings(deadline=None, max_examples=40)
    @given(values=st.lists(finite, min_size=2, max_size=30),
           seed=st.integers(0, 2**31 - 1))
    def test_interval_is_ordered_and_within_range(self, values, seed):
        lo, hi = bootstrap_ci(values, seed=seed)
        assert lo <= hi
        assert lo >= min(values) - 1e-9
        assert hi <= max(values) + 1e-9

    @settings(deadline=None, max_examples=25)
    @given(values=st.lists(finite, min_size=4, max_size=20),
           seed=st.integers(0, 2**31 - 1))
    def test_width_never_grows_with_more_data(self, values, seed):
        """Replicating the sample 16× shrinks the standard error ~4×;
        the bootstrap interval must not widen."""
        lo_small, hi_small = bootstrap_ci(values, seed=seed)
        lo_big, hi_big = bootstrap_ci(values * 16, seed=seed)
        assert (hi_big - lo_big) <= (hi_small - lo_small) + 1e-9

    def test_width_shrinks_strictly_on_spread_data(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0.0, 1.0, size=20).tolist()
        lo_s, hi_s = bootstrap_ci(values, seed=1)
        lo_b, hi_b = bootstrap_ci(values * 16, seed=1)
        assert (hi_b - lo_b) < 0.5 * (hi_s - lo_s)

    def test_empty_and_degenerate_inputs(self):
        assert bootstrap_ci([]) == (0.0, 0.0)
        lo, hi = bootstrap_ci([2.5] * 8)
        assert lo == hi == 2.5
