"""ActorCritic policy, PPO updater, rollout collection, training loop."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import envs
from repro.nn import Tensor
from repro.rl import (
    ActorCritic,
    EpisodeStats,
    PPOConfig,
    PPOUpdater,
    RolloutBuffer,
    TrainConfig,
    collect_rollout,
    evaluate_policy,
    train_ppo,
)


@pytest.fixture
def policy(rng):
    return ActorCritic(4, 2, hidden_sizes=(16,), rng=rng)


class TestActorCritic:
    def test_act_outputs(self, policy, rng):
        action, logp, ve, vi, normalized = policy.act(np.ones(4), rng)
        assert action.shape == (2,)
        assert isinstance(logp, float) and isinstance(ve, float)
        assert vi == 0.0  # single head by default
        assert normalized.shape == (4,)

    def test_deterministic_mode_repeats(self, policy, rng):
        a1 = policy.action(np.ones(4), rng, deterministic=True)
        a2 = policy.action(np.ones(4), rng, deterministic=True)
        np.testing.assert_array_equal(a1, a2)

    def test_stochastic_varies(self, policy, rng):
        a1 = policy.action(np.ones(4), rng)
        a2 = policy.action(np.ones(4), rng)
        assert not np.allclose(a1, a2)

    def test_dual_value_head(self, rng):
        policy = ActorCritic(4, 2, dual_value=True, rng=rng)
        _, _, ve, vi, _ = policy.act(np.ones(4), rng)
        assert policy.value_intrinsic(np.ones((3, 4))).shape == (3,)

    def test_intrinsic_head_requires_dual(self, policy):
        with pytest.raises(RuntimeError):
            policy.value_intrinsic(np.ones((2, 4)))

    def test_normalizer_optional(self, rng):
        policy = ActorCritic(3, 1, normalize_obs=False, rng=rng)
        obs = np.array([100.0, -50.0, 0.0])
        np.testing.assert_array_equal(policy.normalize(obs), obs)

    def test_checkpoint_roundtrip_includes_normalizer(self, rng):
        a = ActorCritic(3, 2, rng=rng)
        for _ in range(10):
            a.normalize(rng.standard_normal(3) * 7.0, update=True)
        state = a.checkpoint_state()
        b = ActorCritic(3, 2, rng=np.random.default_rng(77))
        b.load_checkpoint_state(state)
        x = rng.standard_normal(3)
        np.testing.assert_allclose(a.normalize(x, update=False),
                                   b.normalize(x, update=False))
        np.testing.assert_allclose(a.actor(np.ones(3)).data, b.actor(np.ones(3)).data)


def make_batch(policy, rng, n=64):
    obs = rng.standard_normal((n, 4))
    from repro import nn
    with nn.no_grad():
        dist = policy.distribution(obs)
        actions = dist.sample(rng)
        logp = dist.log_prob(actions).data
    return {
        "obs": obs,
        "actions": actions,
        "log_probs": logp,
        "advantages_e": rng.standard_normal(n),
        "advantages_i": np.zeros(n),
        "returns_e": rng.standard_normal(n),
        "returns_i": np.zeros(n),
    }


class TestPPOUpdater:
    def test_update_changes_parameters(self, policy, rng):
        updater = PPOUpdater(policy, PPOConfig(epochs=2, minibatches=2))
        before = policy.state_dict()
        stats = updater.update(make_batch(policy, rng), rng=rng)
        after = policy.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)
        for key in ("policy_loss", "value_loss", "entropy", "approx_kl", "updates"):
            assert key in stats

    def test_target_kl_early_stop(self, policy, rng):
        config = PPOConfig(epochs=50, minibatches=1, learning_rate=0.05, target_kl=1e-4)
        updater = PPOUpdater(policy, config)
        stats = updater.update(make_batch(policy, rng), rng=rng)
        assert stats["updates"] < 50

    def test_tau_mixes_intrinsic_advantages(self, policy, rng):
        batch = make_batch(policy, rng)
        batch["advantages_e"] = np.zeros_like(batch["advantages_e"])
        batch["advantages_i"] = rng.standard_normal(len(batch["obs"]))
        updater = PPOUpdater(policy, PPOConfig(epochs=1, minibatches=1))
        before = policy.state_dict()
        updater.update(batch, tau=0.0, rng=rng)
        # zero combined advantage: actor weights barely move (entropy only
        # touches log_std; the value heads do move)
        mid = policy.state_dict()
        assert np.allclose(before["actor.layer0.weight"], mid["actor.layer0.weight"],
                           atol=1e-9)
        updater.update(batch, tau=1.0, rng=rng)
        after = policy.state_dict()
        assert not np.allclose(mid["actor.layer0.weight"], after["actor.layer0.weight"])

    def test_extra_loss_hook_invoked(self, policy, rng):
        calls = []

        def hook(p, obs, dist):
            calls.append(len(obs))
            return (dist.mean**2).mean() * 0.0

        updater = PPOUpdater(policy, PPOConfig(epochs=1, minibatches=2), extra_loss=hook)
        updater.update(make_batch(policy, rng), rng=rng)
        assert len(calls) == 2


class ToyTargetEnv(envs.Env):
    """Reward = -(action - obs)^2: optimal policy copies its observation."""

    def __init__(self):
        super().__init__()
        self.observation_space = envs.Box(-1.0, 1.0, (1,))
        self.action_space = envs.Box(-1.0, 1.0, (1,))
        self.t = 0

    def _reset(self):
        self.t = 0
        self.obs = self.np_random.uniform(-1, 1, 1)
        return self.obs

    def step(self, action):
        reward = -float((action[0] - self.obs[0]) ** 2)
        self.t += 1
        self.obs = self.np_random.uniform(-1, 1, 1)
        return self.obs, reward, False, self.t >= 20, {}


class TestRolloutAndTraining:
    def test_collect_rollout_fills_buffer(self, rng):
        env = envs.make("Hopper-v0")
        policy = ActorCritic(11, 3, hidden_sizes=(16,), rng=rng)
        buffer = RolloutBuffer(100, 11, 3)
        env.seed(0)
        stats = collect_rollout(env, policy, buffer, rng)
        assert buffer.full
        assert isinstance(stats, EpisodeStats)

    def test_evaluate_policy_counts_episodes(self, rng):
        env = envs.make("FetchReach-v0")
        policy = ActorCritic(10, 3, hidden_sizes=(16,), rng=rng)
        stats = evaluate_policy(env, policy, episodes=3, rng=rng)
        assert len(stats) == 3
        assert all(length <= 60 for length in stats.lengths)

    def test_train_ppo_improves_toy_task(self):
        result = train_ppo(ToyTargetEnv(), TrainConfig(
            iterations=15, steps_per_iteration=400, hidden_sizes=(16,), seed=0))
        first = result.history[0]["mean_return"]
        last = result.final_return
        assert not math.isnan(last)  # trained runs always have history
        assert last > first + 1.0  # clearly learned to copy obs

    def test_final_return_nan_on_empty_history(self):
        result = train_ppo(ToyTargetEnv(), TrainConfig(
            iterations=0, steps_per_iteration=60, hidden_sizes=(8,), seed=0))
        assert result.history == []
        # nan, not 0.0: "no data" must not look like a real zero return
        assert math.isnan(result.final_return)

    def test_history_fields(self):
        result = train_ppo(ToyTargetEnv(), TrainConfig(
            iterations=2, steps_per_iteration=100, hidden_sizes=(8,), seed=0))
        for key in ("iteration", "mean_return", "success_rate", "approx_kl"):
            assert key in result.history[0]

    def test_callback_invoked(self):
        seen = []
        train_ppo(ToyTargetEnv(), TrainConfig(iterations=3, steps_per_iteration=60,
                                              hidden_sizes=(8,), seed=0),
                  callback=lambda i, p, s: seen.append(i))
        assert seen == [0, 1, 2]

    def test_quick_eval_rejects_zero_episodes(self, rng):
        from repro.rl import quick_eval
        env = envs.make("Hopper-v0")
        policy = ActorCritic(11, 3, hidden_sizes=(16,), rng=rng)
        for episodes in (0, -1):
            with pytest.raises(ValueError, match="episodes >= 1"):
                quick_eval(env, policy, episodes=episodes)
            with pytest.raises(ValueError, match="episodes >= 1"):
                evaluate_policy(env, policy, episodes=episodes, rng=rng)

    def test_empty_episode_stats_refuse_to_aggregate(self):
        stats = EpisodeStats()
        assert len(stats) == 0
        for aggregate in ("mean_return", "std_return", "success_rate"):
            with pytest.raises(ValueError, match="zero finished episodes"):
                getattr(stats, aggregate)
