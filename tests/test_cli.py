"""CLI argument parsing (execution paths are covered by test_experiments)."""

from __future__ import annotations

import pytest

from repro.experiments.cli import apply_resume, build_parser


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.what == ["table1"]
        assert args.scale == "smoke"
        assert args.seed == 0

    def test_multiple_targets(self):
        args = build_parser().parse_args(["fig6", "fig7", "--scale", "short"])
        assert args.what == ["fig6", "fig7"]
        assert args.scale == "short"

    def test_env_and_attack_filters(self):
        args = build_parser().parse_args(
            ["table2", "--envs", "FetchReach-v0", "--attacks", "sarl", "imap-pc"])
        assert args.envs == ["FetchReach-v0"]
        assert args.attacks == ["sarl", "imap-pc"]

    def test_rejects_unknown_target(self):
        # Validation lives in apply_resume, not argparse choices: with
        # nargs="*" argparse would reject the empty default of a bare
        # --resume invocation.
        parser = build_parser()
        with pytest.raises(SystemExit):
            apply_resume(parser.parse_args(["table9"]), parser)

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "galactic"])
