"""The four adversarial intrinsic regularizers, mimic policy, BR dynamics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.base import AdversaryRollout, AttackConfig
from repro.attacks.imap import (
    DivergenceRegularizer,
    MimicPolicy,
    PolicyCoverageRegularizer,
    RiskRegularizer,
    StateCoverageRegularizer,
    imap_name,
    make_regularizer,
)
from repro.rl import ActorCritic


def make_rollout(rng, n=40, feature_dim=4, obs_dim=6, action_dim=2,
                 victim_features=None, adversary_features=None):
    features_v = victim_features if victim_features is not None else rng.standard_normal((n, feature_dim))
    features_a = adversary_features if adversary_features is not None else rng.standard_normal((n, feature_dim))
    dones = np.zeros(n)
    dones[-1] = 1.0
    return AdversaryRollout(
        obs=rng.standard_normal((n, obs_dim)),
        actions=rng.standard_normal((n, action_dim)),
        log_probs=rng.standard_normal(n),
        rewards=np.zeros(n),
        values_e=np.zeros(n),
        values_i=np.zeros(n),
        dones=dones,
        terminated=dones.copy(),
        bootstrap_e=np.zeros(n),
        bootstrap_i=np.zeros(n),
        knn_victim=features_v,
        knn_adversary=features_a,
        episode_rewards=[-1.0, 0.0],
        episode_victim_rewards=[10.0, 5.0],
        episode_successes=[True, False],
    )


@pytest.fixture
def config():
    return AttackConfig(knn_k=3, seed=0)


@pytest.fixture
def policy(rng):
    return ActorCritic(6, 2, hidden_sizes=(8,), dual_value=True, rng=rng)


class TestFactory:
    def test_make_all(self, config):
        for name, cls in [("sc", StateCoverageRegularizer), ("pc", PolicyCoverageRegularizer),
                          ("r", RiskRegularizer), ("d", DivergenceRegularizer)]:
            assert isinstance(make_regularizer(name, config), cls)

    def test_unknown_name(self, config):
        with pytest.raises(ValueError):
            make_regularizer("xyz", config)

    def test_imap_name(self):
        assert imap_name("pc") == "IMAP-PC"
        assert imap_name("r", use_bias_reduction=True) == "IMAP-R+BR"


class TestStateCoverage:
    def test_isolated_state_gets_higher_bonus(self, config, policy, rng):
        features = rng.standard_normal((30, 3)) * 0.1
        features[7] = [10.0, 10.0, 10.0]  # isolated
        rollout = make_rollout(rng, n=30, feature_dim=3, adversary_features=features)
        bonus = StateCoverageRegularizer(config).compute(rollout, policy)
        assert bonus.argmax() == 7

    def test_multiagent_mixes_spaces(self, config, policy, rng):
        features_a = rng.standard_normal((20, 3)) * 0.01   # dense: low bonus
        features_v = rng.standard_normal((20, 3)) * 10.0   # spread: high bonus
        rollout = make_rollout(rng, n=20, feature_dim=3,
                               adversary_features=features_a, victim_features=features_v)
        from dataclasses import replace
        low_xi = StateCoverageRegularizer(replace(config, xi=0.0), multi_agent=True)
        high_xi = StateCoverageRegularizer(replace(config, xi=1.0), multi_agent=True)
        assert high_xi.compute(rollout, policy).mean() > low_xi.compute(rollout, policy).mean()


class TestPolicyCoverage:
    def test_bonus_shrinks_on_heavily_revisited_states(self, config, policy, rng):
        reg = PolicyCoverageRegularizer(config)
        features = rng.standard_normal((40, 3))
        r1 = make_rollout(rng, n=40, feature_dim=3, adversary_features=features)
        bonus_before = reg.compute(r1, policy)
        # densely revisit the same region several times: ρ grows there
        for _ in range(5):
            jittered = features + rng.normal(0, 0.01, features.shape)
            reg.after_update(
                make_rollout(rng, n=40, feature_dim=3, adversary_features=jittered),
                policy,
            )
        bonus_after = reg.compute(
            make_rollout(rng, n=40, feature_dim=3, adversary_features=features.copy()),
            policy,
        )
        assert bonus_after.mean() < bonus_before.mean()

    def test_novel_region_keeps_high_bonus(self, config, policy, rng):
        reg = PolicyCoverageRegularizer(config)
        old = rng.standard_normal((40, 3))
        reg.after_update(make_rollout(rng, n=40, feature_dim=3, adversary_features=old), policy)
        novel = old + 100.0
        both = np.vstack([old[:20], novel[:20]])
        rollout = make_rollout(rng, n=40, feature_dim=3, adversary_features=both)
        bonus = reg.compute(rollout, policy)
        assert bonus[20:].mean() > bonus[:20].mean()

    def test_state_dict_roundtrip_keeps_bonus_bit_identical(self, config, policy, rng):
        """The union buffers AND their density indexes survive a
        checkpoint: a restored regularizer computes the same bonuses."""
        reg = PolicyCoverageRegularizer(config)
        for _ in range(3):
            reg.after_update(make_rollout(rng, n=40, feature_dim=3), policy)
        restored = PolicyCoverageRegularizer(config)
        restored.load_state_dict(reg.state_dict())
        probe = make_rollout(rng, n=40, feature_dim=3)
        np.testing.assert_array_equal(restored.compute(probe, policy),
                                      reg.compute(probe, policy))
        assert restored._index_adv.n_indexed == reg._index_adv.n_indexed
        assert restored._index_adv.n_pending == reg._index_adv.n_pending

    def test_index_tracks_reservoir_replacement(self, policy, rng):
        """Past union capacity the reservoir overwrites rows; the index
        must keep matching a from-scratch estimator over the buffer."""
        from dataclasses import replace
        from repro.density import KnnDensityEstimator

        small = replace(AttackConfig(knn_k=3, seed=0), union_buffer_capacity=60)
        reg = PolicyCoverageRegularizer(small)
        for _ in range(4):  # 4 * 40 states > 60: replacement kicks in
            reg.after_update(make_rollout(rng, n=40, feature_dim=3), policy)
        queries = rng.standard_normal((10, 3))
        np.testing.assert_array_equal(
            reg._index_adv.query(queries, 3),
            KnnDensityEstimator(reg._union_adv.states, k=3).distance(queries))


class TestTinyBufferRegression:
    """A 1-state rollout must not produce the pathological ~1e8 bonus
    that the clipped zero self-distance used to invert into."""

    def test_state_coverage_single_state_rollout(self, config, policy, rng):
        rollout = make_rollout(rng, n=1, feature_dim=3)
        bonus = StateCoverageRegularizer(config).compute(rollout, policy)
        np.testing.assert_allclose(bonus, np.log(np.array([2.0])))

    def test_policy_coverage_single_state_rollout(self, config, policy, rng):
        reg = PolicyCoverageRegularizer(config)
        rollout = make_rollout(rng, n=1, feature_dim=3)
        bonus = reg.compute(rollout, policy)
        np.testing.assert_allclose(bonus, np.ones(1))  # sqrt(1.0 * 1.0)
        reg.after_update(rollout, policy)
        followup = reg.compute(make_rollout(rng, n=1, feature_dim=3), policy)
        assert np.isfinite(followup).all() and (np.abs(followup) < 1e3).all()


def make_empty_rollout(obs_dim=6, action_dim=2, feature_dim=4):
    zeros = np.zeros(0)
    return AdversaryRollout(
        obs=np.zeros((0, obs_dim)), actions=np.zeros((0, action_dim)),
        log_probs=zeros, rewards=zeros, values_e=zeros, values_i=zeros,
        dones=zeros, terminated=zeros, bootstrap_e=zeros, bootstrap_i=zeros,
        knn_victim=np.zeros((0, feature_dim)),
        knn_adversary=np.zeros((0, feature_dim)),
        episode_rewards=[], episode_victim_rewards=[], episode_successes=[],
    )


class TestRisk:
    def test_target_captured_lazily(self, config, policy, rng):
        reg = RiskRegularizer(config)
        rollout = make_rollout(rng)
        reg.compute(rollout, policy)
        np.testing.assert_array_equal(reg.target, rollout.knn_victim[0])

    def test_bonus_is_negative_distance(self, config, policy, rng):
        target = np.zeros(3)
        reg = RiskRegularizer(config, target=target)
        features = rng.standard_normal((25, 3))
        rollout = make_rollout(rng, n=25, feature_dim=3, victim_features=features)
        bonus = reg.compute(rollout, policy)
        np.testing.assert_allclose(bonus, -np.linalg.norm(features, axis=1), atol=1e-12)

    def test_closer_states_score_higher(self, config, policy, rng):
        reg = RiskRegularizer(config, target=np.zeros(3))
        features = np.vstack([np.full((5, 3), 0.1), np.full((5, 3), 5.0)])
        rollout = make_rollout(rng, n=10, feature_dim=3, victim_features=features)
        bonus = reg.compute(rollout, policy)
        assert bonus[:5].mean() > bonus[5:].mean()

    def test_empty_rollout_returns_empty_bonus(self, config, policy):
        """Used to raise IndexError on rollout.knn_victim[0]."""
        reg = RiskRegularizer(config)
        bonus = reg.compute(make_empty_rollout(), policy)
        assert bonus.shape == (0,)
        assert reg.target is None  # no state to capture a lazy target from

    def test_empty_rollout_keeps_existing_target(self, config, policy, rng):
        reg = RiskRegularizer(config, target=np.zeros(4))
        assert reg.compute(make_empty_rollout(), policy).shape == (0,)
        np.testing.assert_array_equal(reg.target, np.zeros(4))
        rollout = make_rollout(rng)  # still works on the next real rollout
        assert reg.compute(rollout, policy).shape == (len(rollout),)


class TestDivergence:
    def test_zero_before_mimic_trained(self, config, policy, rng):
        reg = DivergenceRegularizer(config)
        bonus = reg.compute(make_rollout(rng), policy)
        np.testing.assert_array_equal(bonus, np.zeros(40))

    def test_positive_after_policy_moves(self, config, policy, rng):
        reg = DivergenceRegularizer(config)
        rollout = make_rollout(rng)
        reg.after_update(rollout, policy)  # mimic fits current policy
        # shift the policy so it diverges from the mimic
        for p in policy.actor.parameters():
            p.data = p.data + 0.5
        bonus = reg.compute(make_rollout(rng), policy)
        assert bonus.mean() > 0.0
        assert (bonus >= 0.0).all()  # KL is nonnegative


class TestMimicPolicy:
    def test_fit_reduces_loss(self, policy, rng):
        mimic = MimicPolicy(6, 2, hidden=(16,), seed=0)
        obs = rng.standard_normal((200, 6))
        mimic.absorb(obs, policy)
        first = mimic.fit(steps=1)
        for _ in range(10):
            last = mimic.fit(steps=20)
        assert last < first

    def test_absorb_respects_capacity(self, policy, rng):
        mimic = MimicPolicy(6, 2, buffer_capacity=50, seed=0)
        mimic.absorb(rng.standard_normal((200, 6)), policy)
        assert len(mimic._obs) == 50
        assert mimic._seen == 200

    def test_fit_empty_buffer_is_noop(self):
        mimic = MimicPolicy(4, 2, seed=0)
        assert mimic.fit() == 0.0
        assert not mimic.trained

    def test_mimic_converges_to_policy_mean(self, policy, rng):
        mimic = MimicPolicy(6, 2, hidden=(32,), learning_rate=3e-3, seed=0)
        obs = rng.standard_normal((500, 6))
        mimic.absorb(obs, policy)
        for _ in range(40):
            mimic.fit(steps=25)
        from repro import nn
        with nn.no_grad():
            target = policy.distribution(obs[:50]).mean.data
            got = mimic.distribution(obs[:50]).mean.data
        assert np.abs(target - got).mean() < 0.15
