"""DiagGaussian / Categorical: densities, entropy, KL, sampling."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.nn import Categorical, DiagGaussian, Tensor


class TestDiagGaussian:
    def test_log_prob_matches_scipy(self, rng):
        mean = rng.standard_normal((6, 3))
        log_std = rng.uniform(-1.0, 0.5, size=3)
        actions = rng.standard_normal((6, 3))
        dist = DiagGaussian(mean, log_std)
        ours = dist.log_prob(actions).data
        expected = stats.norm.logpdf(actions, loc=mean, scale=np.exp(log_std)).sum(axis=-1)
        np.testing.assert_allclose(ours, expected, atol=1e-10)

    def test_entropy_matches_scipy(self, rng):
        log_std = rng.uniform(-1.0, 1.0, size=4)
        dist = DiagGaussian(np.zeros((2, 4)), log_std)
        expected = stats.norm.entropy(scale=np.exp(log_std)).sum()
        np.testing.assert_allclose(dist.entropy().data, [expected, expected], atol=1e-10)

    def test_kl_zero_for_identical(self, rng):
        mean = rng.standard_normal((5, 2))
        dist = DiagGaussian(mean, np.zeros(2))
        np.testing.assert_allclose(dist.kl(DiagGaussian(mean.copy(), np.zeros(2))).data,
                                   np.zeros(5), atol=1e-12)

    def test_kl_nonnegative_and_asymmetric(self, rng):
        a = DiagGaussian(rng.standard_normal((8, 3)), rng.uniform(-1, 0, 3))
        b = DiagGaussian(rng.standard_normal((8, 3)), rng.uniform(-1, 0, 3))
        kl_ab, kl_ba = a.kl(b).data, b.kl(a).data
        assert (kl_ab >= 0).all() and (kl_ba >= 0).all()
        assert not np.allclose(kl_ab, kl_ba)

    def test_kl_closed_form_1d(self):
        a = DiagGaussian(np.array([[0.0]]), np.array([0.0]))
        b = DiagGaussian(np.array([[1.0]]), np.array([np.log(2.0)]))
        # KL(N(0,1) || N(1,4)) = ln2 + (1+1)/8 - 1/2
        expected = np.log(2.0) + 2.0 / 8.0 - 0.5
        np.testing.assert_allclose(a.kl(b).data, [expected], atol=1e-12)

    def test_sample_statistics(self, rng):
        dist = DiagGaussian(np.full((20000, 2), 3.0), np.log(np.array([0.5, 2.0])))
        samples = dist.sample(rng)
        np.testing.assert_allclose(samples.mean(axis=0), [3.0, 3.0], atol=0.05)
        np.testing.assert_allclose(samples.std(axis=0), [0.5, 2.0], atol=0.05)

    def test_mode_is_mean(self, rng):
        mean = rng.standard_normal((3, 2))
        np.testing.assert_array_equal(DiagGaussian(mean, np.zeros(2)).mode(), mean)

    def test_log_prob_grad_flows_to_params(self, rng):
        mean = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        log_std = Tensor(np.zeros(2), requires_grad=True)
        dist = DiagGaussian(mean, log_std)
        dist.log_prob(rng.standard_normal((4, 2))).sum().backward()
        assert mean.grad is not None and log_std.grad is not None


class TestCategorical:
    def test_probs_normalized(self, rng):
        c = Categorical(rng.standard_normal((6, 5)))
        np.testing.assert_allclose(c.probs().data.sum(axis=-1), np.ones(6), atol=1e-12)

    def test_log_prob_consistent_with_probs(self, rng):
        logits = rng.standard_normal((4, 3))
        c = Categorical(logits)
        actions = np.array([0, 2, 1, 1])
        lp = c.log_prob(actions).data
        p = c.probs().data[np.arange(4), actions]
        np.testing.assert_allclose(np.exp(lp), p, atol=1e-12)

    def test_entropy_max_for_uniform(self):
        c = Categorical(np.zeros((1, 4)))
        np.testing.assert_allclose(c.entropy().data, [np.log(4.0)], atol=1e-12)

    def test_kl_nonnegative(self, rng):
        a = Categorical(rng.standard_normal((10, 6)))
        b = Categorical(rng.standard_normal((10, 6)))
        assert (a.kl(b).data >= -1e-12).all()

    def test_sampling_distribution(self, rng):
        logits = np.log(np.array([0.7, 0.2, 0.1]))
        c = Categorical(np.tile(logits, (20000, 1)))
        samples = c.sample(rng)
        freq = np.bincount(samples, minlength=3) / 20000
        np.testing.assert_allclose(freq, [0.7, 0.2, 0.1], atol=0.02)

    def test_mode(self):
        c = Categorical(np.array([[0.1, 5.0, -1.0], [2.0, 0.0, 0.0]]))
        np.testing.assert_array_equal(c.mode(), [1, 0])

    def test_single_row_log_prob(self):
        c = Categorical(np.array([0.0, 1.0, 2.0]))
        lp = c.log_prob(2)
        assert lp.data.shape == ()


@settings(max_examples=25, deadline=None)
@given(st.floats(-3, 3), st.floats(-1, 1), st.floats(-3, 3), st.floats(-1, 1))
def test_property_gaussian_kl_nonnegative(m1, ls1, m2, ls2):
    a = DiagGaussian(np.array([[m1]]), np.array([ls1]))
    b = DiagGaussian(np.array([[m2]]), np.array([ls2]))
    assert float(a.kl(b).data[0]) >= -1e-10
