"""Spaces, Env base API, Wrapper delegation, TimeLimit semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.envs import Box, Discrete, Env, TimeLimit, Wrapper


class CountingEnv(Env):
    """Steps forever, reward 1; terminates itself at ``die_at`` if set."""

    def __init__(self, die_at: int | None = None):
        super().__init__()
        self.observation_space = Box(-np.inf, np.inf, (2,))
        self.action_space = Box(-1.0, 1.0, (1,))
        self.die_at = die_at
        self.t = 0

    def _reset(self):
        self.t = 0
        return np.zeros(2)

    def step(self, action):
        self.t += 1
        terminated = self.die_at is not None and self.t >= self.die_at
        return np.full(2, float(self.t)), 1.0, terminated, False, {"success": False}


class TestBox:
    def test_contains(self):
        box = Box(-1.0, 1.0, (3,))
        assert box.contains(np.zeros(3))
        assert not box.contains(np.full(3, 2.0))
        assert not box.contains(np.zeros(4))

    def test_sample_within_bounds(self, rng):
        box = Box(-2.0, 3.0, (5,))
        for _ in range(20):
            assert box.contains(box.sample(rng))

    def test_sample_unbounded_is_finite(self, rng):
        box = Box(-np.inf, np.inf, (4,))
        assert np.isfinite(box.sample(rng)).all()

    def test_clip(self):
        box = Box(-1.0, 1.0, (2,))
        np.testing.assert_array_equal(box.clip([5.0, -5.0]), [1.0, -1.0])

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Box(1.0, -1.0, (2,))

    def test_equality(self):
        assert Box(-1, 1, (2,)) == Box(-1, 1, (2,))
        assert Box(-1, 1, (2,)) != Box(-1, 1, (3,))

    def test_shape_from_array_low(self):
        box = Box(np.zeros(3), np.ones(3))
        assert box.shape == (3,)


class TestDiscrete:
    def test_contains(self):
        d = Discrete(4)
        assert d.contains(0) and d.contains(3)
        assert not d.contains(4) and not d.contains(-1)
        assert not d.contains("x")

    def test_sample_range(self, rng):
        d = Discrete(3)
        samples = {d.sample(rng) for _ in range(100)}
        assert samples == {0, 1, 2}

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Discrete(0)


class TestTimeLimit:
    def test_truncates_at_limit(self):
        env = TimeLimit(CountingEnv(), max_steps=5)
        env.reset()
        for i in range(4):
            _, _, term, trunc, _ = env.step(np.zeros(1))
            assert not term and not trunc
        _, _, term, trunc, _ = env.step(np.zeros(1))
        assert trunc and not term

    def test_termination_beats_truncation(self):
        env = TimeLimit(CountingEnv(die_at=5), max_steps=5)
        env.reset()
        for _ in range(4):
            env.step(np.zeros(1))
        _, _, term, trunc, _ = env.step(np.zeros(1))
        assert term and not trunc

    def test_reset_restarts_counter(self):
        env = TimeLimit(CountingEnv(), max_steps=3)
        env.reset()
        for _ in range(3):
            env.step(np.zeros(1))
        env.reset()
        _, _, _, trunc, _ = env.step(np.zeros(1))
        assert not trunc

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            TimeLimit(CountingEnv(), max_steps=0)


class TestWrapper:
    def test_unwrapped_chain(self):
        base = CountingEnv()
        wrapped = TimeLimit(Wrapper(base), 5)
        assert wrapped.unwrapped is base

    def test_seed_reproducibility(self, rng):
        from repro.envs import make
        a, b = make("Hopper-v0"), make("Hopper-v0")
        oa, ob = a.reset(seed=7), b.reset(seed=7)
        np.testing.assert_array_equal(oa, ob)
        action = a.action_space.sample(np.random.default_rng(0))
        np.testing.assert_array_equal(a.step(action)[0], b.step(action)[0])

    def test_spaces_delegate(self):
        base = CountingEnv()
        w = Wrapper(base)
        assert w.observation_space is base.observation_space
        assert w.action_space is base.action_space


class TestRegistry:
    def test_all_ids_make(self):
        from repro import envs
        for env_id in envs.DENSE_TASKS + envs.SPARSE_TASKS:
            env = envs.make(env_id)
            obs = env.reset(seed=0)
            assert env.observation_space.contains(obs), env_id

    def test_unknown_id_raises(self):
        from repro import envs
        with pytest.raises(KeyError):
            envs.make("NopeEnv-v0")
        with pytest.raises(KeyError):
            envs.make_game("NopeGame-v0")

    def test_duplicate_registration_rejected(self):
        from repro.envs import registry
        with pytest.raises(ValueError):
            registry.register("Hopper-v0", lambda: None)

    def test_paper_observation_dimensions(self):
        """Obs dims must match the paper's tasks (Section 6.1)."""
        from repro import envs
        expected = {"Hopper-v0": 11, "Walker2d-v0": 17, "HalfCheetah-v0": 17,
                    "Ant-v0": 111, "Humanoid-v0": 376, "HumanoidStandup-v0": 376}
        for env_id, dim in expected.items():
            assert envs.make(env_id).observation_space.shape == (dim,), env_id
