"""Module container, Linear/MLP layers, initialization, optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import MLP, Adam, Linear, Module, Parameter, SGD, Tensor, clip_grad_norm
from repro.nn import functional as F
from repro.nn import init


class TestInit:
    def test_orthogonal_square(self, rng):
        m = init.orthogonal((8, 8), rng=rng)
        np.testing.assert_allclose(m @ m.T, np.eye(8), atol=1e-10)

    def test_orthogonal_gain(self, rng):
        m = init.orthogonal((6, 6), gain=3.0, rng=rng)
        np.testing.assert_allclose(m @ m.T, 9.0 * np.eye(6), atol=1e-9)

    def test_orthogonal_rectangular(self, rng):
        tall = init.orthogonal((10, 4), rng=rng)
        np.testing.assert_allclose(tall.T @ tall, np.eye(4), atol=1e-10)
        wide = init.orthogonal((4, 10), rng=rng)
        np.testing.assert_allclose(wide @ wide.T, np.eye(4), atol=1e-10)

    def test_xavier_bounds(self, rng):
        m = init.xavier_uniform((20, 30), rng=rng)
        limit = np.sqrt(6.0 / 50)
        assert np.abs(m).max() <= limit


class TestModuleContainer:
    def test_named_parameters_nested(self):
        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(2))

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()
                self.b = Parameter(np.zeros(3))

        names = dict(Outer().named_parameters())
        assert set(names) == {"inner.w", "b"}

    def test_state_dict_roundtrip(self, rng):
        a = MLP(4, (8,), 2, rng=rng)
        b = MLP(4, (8,), 2, rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = rng.standard_normal((5, 4))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_load_state_dict_rejects_mismatch(self, rng):
        a = MLP(4, (8,), 2, rng=rng)
        state = a.state_dict()
        state.pop("output.bias")
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self, rng):
        a = MLP(4, (8,), 2, rng=rng)
        state = a.state_dict()
        state["output.bias"] = np.zeros(5)
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_zero_grad(self, rng):
        mlp = MLP(3, (4,), 1, rng=rng)
        F.mse_loss(mlp(rng.standard_normal((4, 3))), np.zeros((4, 1))).backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())

    def test_num_parameters(self, rng):
        mlp = MLP(3, (8,), 2, rng=rng)
        assert mlp.num_parameters() == 3 * 8 + 8 + 8 * 2 + 2


class TestLinearAndMLP:
    def test_linear_shapes(self, rng):
        layer = Linear(5, 3, rng=rng)
        assert layer(Tensor(rng.standard_normal((7, 5)))).shape == (7, 3)
        assert layer(Tensor(rng.standard_normal(5))).shape == (3,)

    def test_mlp_output_gain_small(self, rng):
        mlp = MLP(4, (16, 16), 2, output_gain=0.01, rng=rng)
        out = mlp(rng.standard_normal((10, 4)))
        assert np.abs(out.data).max() < 0.5

    def test_mlp_activations(self, rng):
        for act in ("tanh", "relu", "sigmoid", "identity"):
            mlp = MLP(3, (4,), 2, hidden_activation=act, rng=rng)
            assert mlp(rng.standard_normal((2, 3))).shape == (2, 2)

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP(3, (4,), 2, hidden_activation="gelu-ish")

    def test_gradients_reach_all_parameters(self, rng):
        mlp = MLP(3, (6, 6), 2, rng=rng)
        mlp(rng.standard_normal((5, 3))).sum().backward()
        for name, p in mlp.named_parameters():
            assert p.grad is not None, name


class TestOptimizers:
    def test_adam_minimizes_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            ((p - Tensor(np.array([1.0, 2.0]))) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, 2.0], atol=1e-3)

    def test_sgd_momentum_minimizes(self):
        p = Parameter(np.array([4.0]))
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(250):
            opt.zero_grad()
            (p**2).sum().backward()
            opt.step()
        assert abs(float(p.data[0])) < 1e-2

    def test_optimizer_rejects_empty(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_clip_grad_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        total = clip_grad_norm([p], max_norm=1.0)
        assert total == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_clip_grad_norm_noop_below(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.1, 0.1])
        clip_grad_norm([p], max_norm=5.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])

    def test_adam_skips_none_grads(self):
        p1, p2 = Parameter(np.ones(2)), Parameter(np.ones(2))
        p1.grad = np.ones(2)
        opt = Adam([p1, p2], lr=0.1)
        opt.step()
        np.testing.assert_allclose(p2.data, np.ones(2))
        assert not np.allclose(p1.data, np.ones(2))


class TestSerialization:
    def test_save_load_module(self, tmp_path, rng):
        mlp = MLP(3, (4,), 2, rng=rng)
        path = tmp_path / "ckpt.npz"
        nn.save_module(mlp, path, metadata={"tag": "test", "n": 3})
        fresh = MLP(3, (4,), 2, rng=np.random.default_rng(4))
        meta = nn.load_module(fresh, path)
        assert meta == {"tag": "test", "n": 3}
        x = rng.standard_normal((2, 3))
        np.testing.assert_allclose(mlp(x).data, fresh(x).data)

    def test_load_state_returns_arrays(self, tmp_path, rng):
        mlp = MLP(2, (3,), 1, rng=rng)
        path = tmp_path / "x.npz"
        nn.save_module(mlp, path)
        state, meta = nn.load_state(path)
        assert meta == {}
        assert set(state) == set(mlp.state_dict())
