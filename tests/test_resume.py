"""Kill-and-resume battery: a run resumed from a checkpoint is
bit-identical to an uninterrupted one.

Extends the PR-2 determinism battery (tests/test_determinism.py) with
the checkpoint/resume contract:

1. ``train_ppo`` and ``AdversaryTrainer`` resumed from an on-disk
   checkpoint reproduce the uninterrupted run's final parameters,
   history records, *and* telemetry event payloads (the interrupted
   prefix plus the resumed suffix equals the uninterrupted stream).
2. Resume works across process boundaries (``run_parallel`` workers).
3. The scheduler's ``retries=`` requeues a crashed job, which picks up
   from its last checkpoint — same final history as never crashing.
4. A completed sweep cell re-runs entirely from the artifact store —
   nothing retrains.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import envs
from repro.attacks import AttackConfig, StatePerturbationEnv
from repro.attacks.imap.regularizers import make_regularizer
from repro.attacks.trainer import AdversaryTrainer
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import (
    evaluate_cell,
    train_single_agent_attack,
)
from repro.rl import TrainConfig, train_ppo
from repro.runtime import Job, run_parallel
from repro.telemetry import ManualClock, Telemetry, use_telemetry

SEED = 7
STEPS = 128


@pytest.fixture(scope="module")
def small_victim():
    result = train_ppo(envs.make("Hopper-v0"),
                       TrainConfig(iterations=1, steps_per_iteration=256, seed=0))
    result.policy.freeze_normalizer()
    return result.policy


def _ppo_config(iterations: int) -> TrainConfig:
    return TrainConfig(iterations=iterations, steps_per_iteration=STEPS, seed=SEED)


def _memory_telemetry() -> Telemetry:
    return Telemetry.in_memory(clock=ManualClock(0.0, auto_tick=0.25))


def _payloads(telemetry: Telemetry) -> list[dict]:
    # seq restarts at 0 in a resumed run, so compare payloads only.
    return [e["payload"] for e in telemetry.sink.events]


def _assert_params_equal(a, b) -> None:
    sa, sb = a.state_dict(), b.state_dict()
    assert sorted(sa) == sorted(sb)
    for key, value in sa.items():
        np.testing.assert_array_equal(value, sb[key], err_msg=key)


class TestTrainPpoResume:
    def test_resume_bit_identical(self, tmp_path):
        full_t = _memory_telemetry()
        full = train_ppo(envs.make("Hopper-v0"), _ppo_config(4), telemetry=full_t)

        ckpt = tmp_path / "ppo.ckpt.npz"
        part1_t = _memory_telemetry()
        train_ppo(envs.make("Hopper-v0"), _ppo_config(2), telemetry=part1_t,
                  checkpoint_path=ckpt, checkpoint_every=1)
        part2_t = _memory_telemetry()
        resumed = train_ppo(envs.make("Hopper-v0"), _ppo_config(4),
                            telemetry=part2_t, checkpoint_path=ckpt,
                            checkpoint_every=1)

        assert resumed.history == full.history
        _assert_params_equal(resumed.policy, full.policy)
        assert _payloads(part1_t) + _payloads(part2_t) == _payloads(full_t)

    def test_crash_mid_iteration_resumes_from_last_boundary(self, tmp_path):
        full = train_ppo(envs.make("Hopper-v0"), _ppo_config(3))

        class Injected(Exception):
            pass

        def crash(iteration, policy, record):
            if iteration == 1:
                raise Injected

        ckpt = tmp_path / "ppo.ckpt.npz"
        with pytest.raises(Injected):
            train_ppo(envs.make("Hopper-v0"), _ppo_config(3), callback=crash,
                      checkpoint_path=ckpt, checkpoint_every=1)
        # The crash hit during iteration 1, after iteration 0's checkpoint:
        # the resume replays iteration 1 from that boundary, bit-identically.
        resumed = train_ppo(envs.make("Hopper-v0"), _ppo_config(3),
                            checkpoint_path=ckpt, checkpoint_every=1)
        assert resumed.history == full.history
        _assert_params_equal(resumed.policy, full.policy)

    def test_resume_ignored_without_checkpoint(self, tmp_path):
        full = train_ppo(envs.make("Hopper-v0"), _ppo_config(2))
        fresh = train_ppo(envs.make("Hopper-v0"), _ppo_config(2),
                          checkpoint_path=tmp_path / "none.ckpt.npz",
                          checkpoint_every=1)
        assert fresh.history == full.history


def _make_adversary_trainer(victim, iterations, telemetry=None,
                            regularizer="pc", use_br=False):
    env = StatePerturbationEnv(envs.make("Hopper-v0"), victim, epsilon=0.6, seed=0)
    config = AttackConfig(iterations=iterations, steps_per_iteration=STEPS,
                          seed=3, use_bias_reduction=use_br)
    reg = make_regularizer(regularizer, config) if regularizer else None
    return AdversaryTrainer(env, config, regularizer=reg, telemetry=telemetry)


class TestAdversaryResume:
    @pytest.mark.parametrize("regularizer,use_br", [
        ("pc", False),   # union buffer B state
        ("pc", True),    # + bias-reduction tau/lambda state
        ("d", False),    # mimic policy + its Adam + reservoir state
        (None, False),   # plain SA-RL
    ], ids=["pc", "pc+br", "d", "sarl"])
    def test_resume_bit_identical(self, tmp_path, small_victim, regularizer, use_br):
        full_t = _memory_telemetry()
        full = _make_adversary_trainer(small_victim, 4, full_t,
                                       regularizer, use_br).train()

        ckpt = tmp_path / "adv.ckpt.npz"
        part1_t = _memory_telemetry()
        _make_adversary_trainer(small_victim, 2, part1_t, regularizer, use_br) \
            .train(checkpoint_path=ckpt, checkpoint_every=1)
        part2_t = _memory_telemetry()
        resumed = _make_adversary_trainer(small_victim, 4, part2_t,
                                          regularizer, use_br) \
            .train(checkpoint_path=ckpt, checkpoint_every=1)

        assert resumed.history == full.history
        _assert_params_equal(resumed.policy, full.policy)
        assert _payloads(part1_t) + _payloads(part2_t) == _payloads(full_t)

    def test_checkpoint_kind_mismatch_rejected(self, tmp_path, small_victim):
        ckpt = tmp_path / "adv.ckpt.npz"
        _make_adversary_trainer(small_victim, 1).train(checkpoint_path=ckpt,
                                                       checkpoint_every=1)
        with pytest.raises(ValueError, match="cannot resume"):
            train_ppo(envs.make("Hopper-v0"), _ppo_config(2),
                      checkpoint_path=ckpt, checkpoint_every=1)


def _train_history_job(checkpoint_path=None, checkpoint_every=0,
                       marker=None, iterations=3, seed=None):
    """Picklable training cell; crashes once per marker file (first attempt)."""
    def callback(iteration, policy, record):
        if marker is not None and iteration == 1 and not os.path.exists(marker):
            open(marker, "w").close()
            raise RuntimeError("injected crash")

    config = TrainConfig(iterations=iterations, steps_per_iteration=64, seed=5)
    result = train_ppo(envs.make("Hopper-v0"), config, callback=callback,
                       checkpoint_path=checkpoint_path,
                       checkpoint_every=checkpoint_every)
    return result.history


class TestSchedulerFaultTolerance:
    def test_retry_resumes_from_checkpoint(self, tmp_path):
        baseline = _train_history_job(iterations=3)

        telemetry = Telemetry.in_memory()
        marker = tmp_path / "crashed-once"
        jobs = [Job(fn=_train_history_job, name="cell-a",
                    kwargs={"marker": str(marker)}, checkpointable=True)]
        with use_telemetry(telemetry):
            report = run_parallel(jobs, retries=1,
                                  checkpoint_dir=tmp_path / "ckpts",
                                  checkpoint_every=1)

        assert report.n_failed == 0
        assert report.results[0].attempts == 2
        assert marker.exists()
        assert (tmp_path / "ckpts" / "cell-a.ckpt.npz").exists()
        # The retry resumed from iteration 0's checkpoint and finished
        # exactly as a run that never crashed.
        assert report.values()[0] == baseline

        # Inline execution also records the job's own ppo.iteration events;
        # keep only the scheduler's.
        sched = [e for e in telemetry.sink.events
                 if e["type"] in ("job.attempt", "job.finished", "schedule.complete")]
        assert [e["type"] for e in sched] == [
            "job.attempt", "job.finished", "schedule.complete"]
        attempt = sched[0]["payload"]
        assert attempt["name"] == "cell-a" and "injected crash" in attempt["error"]
        finished = sched[1]["payload"]
        assert finished["ok"] is True and finished["attempts"] == 2

    def test_retries_exhausted_reports_failure(self):
        telemetry = Telemetry.in_memory()
        jobs = [Job(fn=_always_boom, name="doomed")]
        report = run_parallel(jobs, retries=2, telemetry=telemetry)
        assert report.n_failed == 1
        assert report.results[0].attempts == 3
        attempts = [e for e in telemetry.sink.events if e["type"] == "job.attempt"]
        assert len(attempts) == 2  # attempts 1 and 2 failed and were requeued

    def test_cross_process_resume(self, tmp_path):
        baseline = _train_history_job(iterations=3)
        ckpt = tmp_path / "cell.ckpt.npz"
        # Interrupted prefix in this process ...
        _train_history_job(checkpoint_path=str(ckpt), checkpoint_every=1,
                           iterations=2)
        # ... finished in fresh worker processes via the pool.
        jobs = [Job(fn=_train_history_job, name=f"resume{i}",
                    kwargs={"checkpoint_path": str(ckpt), "checkpoint_every": 0})
                for i in range(2)]
        report = run_parallel(jobs, max_workers=2)
        assert report.n_failed == 0, report.failures
        assert report.values()[0] == baseline
        assert report.values()[1] == baseline


def _always_boom(seed=None):
    raise RuntimeError("always fails")


TINY_SCALE = ExperimentScale(
    name="tiny", victim_iterations=1, attack_iterations=2,
    steps_per_iteration=128, eval_episodes=3, game_victim_iterations=1,
    game_hardening_iterations=0, game_attack_iterations=1,
)


class TestSweepServedFromStore:
    def test_rerun_retrains_nothing(self, small_victim, monkeypatch):
        first = train_single_agent_attack("Hopper-v0", small_victim, "imap-pc",
                                          TINY_SCALE, seed=0)
        eval_first = evaluate_cell("Hopper-v0", small_victim, "imap-pc", first,
                                   TINY_SCALE)

        from repro.experiments import runner

        def retrained(*args, **kwargs):
            raise AssertionError("cache miss: sweep cell retrained")

        monkeypatch.setattr(runner, "train_imap", retrained)
        monkeypatch.setattr(runner, "train_sarl", retrained)
        second = train_single_agent_attack("Hopper-v0", small_victim, "imap-pc",
                                           TINY_SCALE, seed=0)
        assert second.history == first.history
        assert second.name == first.name
        _assert_params_equal(second.policy, first.policy)
        eval_second = evaluate_cell("Hopper-v0", small_victim, "imap-pc", second,
                                    TINY_SCALE)
        assert eval_second.mean_reward == eval_first.mean_reward
        assert eval_second.asr == eval_first.asr

    def test_victim_change_invalidates_cache(self, small_victim, monkeypatch):
        train_single_agent_attack("Hopper-v0", small_victim, "sarl",
                                  TINY_SCALE, seed=0)
        other_victim = train_ppo(
            envs.make("Hopper-v0"),
            TrainConfig(iterations=1, steps_per_iteration=256, seed=9)).policy
        other_victim.freeze_normalizer()

        calls = []
        from repro.attacks import train_sarl as real_train_sarl
        from repro.experiments import runner
        monkeypatch.setattr(
            runner, "train_sarl",
            lambda *a, **k: calls.append(1) or real_train_sarl(*a, **k))
        train_single_agent_attack("Hopper-v0", other_victim, "sarl",
                                  TINY_SCALE, seed=0)
        assert calls  # different victim fingerprint ⇒ cache miss ⇒ retrain

    def test_callback_bypasses_cache(self, small_victim):
        seen = []
        train_single_agent_attack("Hopper-v0", small_victim, "sarl", TINY_SCALE,
                                  seed=1, callback=lambda i, p, r: seen.append(i))
        assert seen
        seen.clear()
        train_single_agent_attack("Hopper-v0", small_victim, "sarl", TINY_SCALE,
                                  seed=1, callback=lambda i, p, r: seen.append(i))
        assert seen  # second run trained again so the callback fired
