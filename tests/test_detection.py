"""Active-detection defense: dynamics model + foresight detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro import envs
from repro.defenses.detection import DynamicsModel, ForesightDetector


class TestDynamicsModel:
    def test_fit_reduces_error(self, rng):
        model = DynamicsModel(3, 2, hidden=(32,), seed=0)
        obs = rng.standard_normal((500, 3))
        actions = rng.uniform(-1, 1, (500, 2))
        # simple linear dynamics to learn
        next_obs = obs + 0.1 * np.concatenate([actions, actions[:, :1]], axis=1)
        before = np.linalg.norm(model.predict(obs, actions) - next_obs, axis=1).mean()
        model.fit(obs, actions, next_obs, epochs=30, rng=rng)
        after = np.linalg.norm(model.predict(obs, actions) - next_obs, axis=1).mean()
        assert after < before * 0.5

    def test_predict_shape(self, rng):
        model = DynamicsModel(4, 2, seed=0)
        out = model.predict(rng.standard_normal((7, 4)), rng.uniform(-1, 1, (7, 2)))
        assert out.shape == (7, 4)


class TestForesightDetector:
    def test_quantile_validated(self, tiny_victim):
        with pytest.raises(ValueError):
            ForesightDetector(tiny_victim, quantile=0.3)

    def test_flag_requires_fit(self, tiny_victim, rng):
        detector = ForesightDetector(tiny_victim, seed=0)
        with pytest.raises(RuntimeError):
            detector.flags(np.zeros((1, 11)), np.zeros((1, 3)), np.zeros((1, 11)))

    @pytest.mark.slow
    def test_detects_large_perturbations(self, tiny_victim):
        detector = ForesightDetector(tiny_victim, quantile=0.95, seed=0)
        threshold = detector.fit(envs.make("Hopper-v0"), steps=1500, epochs=10)
        assert threshold > 0

        class BigFlip:
            def action(self, obs, rng=None, deterministic=True):
                return -np.sign(obs)  # full-budget sign flip on every dim

        report = detector.evaluate(lambda: envs.make("Hopper-v0"), BigFlip(),
                                   epsilon=0.6, episodes=3, seed=1)
        assert 0.0 <= report.false_positive_rate <= 1.0
        # a full-budget perturbation on every dim should be well above
        # the clean false-positive rate
        assert report.detection_rate > report.false_positive_rate
