"""LinkChainBody dynamics invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs.physics import BodyConfig, LinkChainBody


def make_body(**kwargs) -> LinkChainBody:
    return LinkChainBody(BodyConfig(**kwargs))


class TestWeights:
    def test_weights_zero_sum(self):
        for n in (2, 3, 6, 8, 17):
            w = BodyConfig(n_joints=n).weights()
            assert abs(w.sum()) < 1e-12, n
            assert abs(np.abs(w).sum() - 1.0) < 1e-12, n

    def test_custom_weights_validated(self):
        with pytest.raises(ValueError):
            LinkChainBody(BodyConfig(n_joints=3, imbalance_weights=np.ones(4)))

    def test_custom_weights_used(self):
        w = np.array([0.5, -0.5, 0.0])
        body = LinkChainBody(BodyConfig(n_joints=3, imbalance_weights=w))
        np.testing.assert_array_equal(body._w, w)


class TestDynamics:
    def test_action_shape_enforced(self, rng):
        body = make_body(n_joints=3)
        with pytest.raises(ValueError):
            body.step(np.zeros(4), rng)

    def test_symmetric_action_moves_forward(self, rng):
        # speed_coupling off: checks the thrust channel in isolation
        body = make_body(n_joints=3, pitch_noise=0.0, speed_coupling=0.0)
        body.reset(rng)
        for _ in range(100):
            body.step(np.full(3, 0.33))
        assert body.x > 1.0
        assert abs(body.pitch) < 0.2  # zero-sum weights: no tipping torque

    def test_zero_action_stays_put(self, rng):
        body = make_body(n_joints=4, pitch_noise=0.0)
        body.reset(rng)
        for _ in range(50):
            body.step(np.zeros(4))
        assert abs(body.x) < 0.1

    def test_full_torque_is_not_fastest(self, rng):
        """cos(q) leverage: over-extension loses thrust (nontrivial optimum)."""
        def final_x(u):
            body = make_body(n_joints=3, pitch_noise=0.0)
            body.reset(np.random.default_rng(0))
            for _ in range(150):
                body.step(np.full(3, u))
            return body.x
        assert final_x(0.33) > final_x(1.0)

    def test_backward_action_moves_backward(self, rng):
        body = make_body(n_joints=3, pitch_noise=0.0)
        body.reset(rng)
        for _ in range(80):
            body.step(np.full(3, -0.3))
        assert body.x < -0.3

    def test_speed_destabilizes_pitch(self):
        """At cruise speed, the pitch channel has an unstable pole."""
        body = make_body(n_joints=3, pitch_noise=0.0)
        body.reset(np.random.default_rng(0))
        body.v = 1.0
        body.pitch = 0.05
        for _ in range(60):
            body.step(np.full(3, 0.33))
            body.v = 1.0  # hold speed
        assert abs(body.pitch) > 0.3

    def test_stationary_pitch_is_stable(self):
        body = make_body(n_joints=3, pitch_noise=0.0)
        body.reset(np.random.default_rng(0))
        body.pitch = 0.1
        for _ in range(100):
            body.step(np.zeros(3))
        assert abs(body.pitch) < 0.05

    def test_imbalance_channel_controls_pitch(self):
        body = make_body(n_joints=3, pitch_noise=0.0)
        body.reset(np.random.default_rng(0))
        direction = body._w / float(body._w @ body._w)
        for _ in range(30):
            body.step(np.clip(0.5 * direction, -1, 1))
        assert body.pitch > 0.02  # positive w·a tips forward

    def test_height_drops_with_pitch_and_crouch(self):
        body = make_body(n_joints=3)
        body.reset(np.random.default_rng(0))
        z0 = body.z
        body.pitch = 0.3
        body._update_height()
        z_pitched = body.z
        assert z_pitched < z0
        body.q = np.full(3, 1.5)
        body._update_height()
        assert body.z < z_pitched

    def test_healthy_boundaries(self):
        body = make_body(n_joints=3)
        body.reset(np.random.default_rng(0))
        assert body.healthy
        body.pitch = body.config.pitch_max + 0.01
        assert not body.healthy
        body.pitch = 0.0
        body.q = np.full(3, 2.5)  # deep crouch -> z below z_min
        body._update_height()
        assert not body.healthy

    def test_core_state_layout(self, rng):
        body = make_body(n_joints=2)
        body.reset(rng)
        state = body.core_state()
        assert state.shape == (body.core_dim,) == (8,)
        assert state[0] == body.z
        assert state[1] == body.pitch
        np.testing.assert_array_equal(state[2:4], body.q)
        assert state[4] == body.v
        assert state[5] == body.pitch_dot
        np.testing.assert_array_equal(state[6:8], body.qd)

    def test_noise_requires_rng(self):
        body = make_body(n_joints=3, pitch_noise=5.0)
        body.reset(np.random.default_rng(0))
        pitch0 = body.pitch
        body.step(np.zeros(3), rng=None)  # no rng -> deterministic
        body2 = make_body(n_joints=3, pitch_noise=5.0)
        body2.reset(np.random.default_rng(0))
        body2.pitch = pitch0
        body2.step(np.zeros(3), rng=None)
        assert body.pitch == body2.pitch


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 10), st.integers(0, 1000))
def test_property_reset_is_healthy_and_near_origin(n_joints, seed):
    body = make_body(n_joints=n_joints)
    body.reset(np.random.default_rng(seed))
    assert body.healthy
    assert body.x == 0.0 and body.v == 0.0
    assert abs(body.pitch) < 0.1


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100))
def test_property_actions_clipped(seed):
    """Huge actions behave exactly like clipped ones."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-5, 5, size=3)
    b1 = make_body(n_joints=3, pitch_noise=0.0)
    b2 = make_body(n_joints=3, pitch_noise=0.0)
    b1.reset(np.random.default_rng(seed))
    b2.reset(np.random.default_rng(seed))
    b1.step(a)
    b2.step(np.clip(a, -1, 1))
    assert b1.x == b2.x and b1.pitch == b2.pitch
