"""FetchReach proxy: kinematics, success, shaping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs.manipulation import FetchReachEnv


class TestKinematics:
    def test_straight_arm(self):
        env = FetchReachEnv()
        ee = env.end_effector(np.zeros(3))
        np.testing.assert_allclose(ee, [sum(env.link_lengths), 0.0], atol=1e-12)

    def test_folded_arm(self):
        env = FetchReachEnv()
        ee = env.end_effector(np.array([np.pi / 2, 0.0, 0.0]))
        np.testing.assert_allclose(ee, [0.0, sum(env.link_lengths)], atol=1e-12)

    def test_reach_radius_bound(self, rng):
        env = FetchReachEnv()
        for _ in range(50):
            q = rng.uniform(-np.pi, np.pi, 3)
            assert np.linalg.norm(env.end_effector(q)) <= sum(env.link_lengths) + 1e-9


class TestTask:
    def test_goal_in_reachable_annulus(self, rng):
        env = FetchReachEnv()
        reach = sum(env.link_lengths)
        for seed in range(30):
            env.reset(seed=seed)
            r = np.linalg.norm(env.goal)
            assert 0.3 * reach <= r <= 0.95 * reach

    def test_success_and_termination(self):
        env = FetchReachEnv()
        env.reset(seed=0)
        # solve with a crude proportional controller in joint space
        done, success = False, False
        for _ in range(200):
            ee = env.end_effector()
            err = env.goal - ee
            # jacobian-transpose-ish control
            angles = np.cumsum(env.q)
            jac = np.zeros((2, 3))
            for j in range(3):
                dx = -np.sum([env.link_lengths[k] * np.sin(angles[k]) for k in range(j, 3)])
                dy = np.sum([env.link_lengths[k] * np.cos(angles[k]) for k in range(j, 3)])
                jac[:, j] = [dx, dy]
            a = np.clip(5.0 * jac.T @ err, -1, 1)
            _, reward, term, trunc, info = env.step(a)
            if term:
                success = info["success"]
                assert reward == 1.0
                done = True
                break
            if trunc:
                done = True
                break
        assert done and success

    def test_timeout_penalty(self):
        env = FetchReachEnv()
        env.reset(seed=1)
        total = 0.0
        for _ in range(env.max_steps):
            _, r, term, trunc, _ = env.step(np.zeros(3))
            total += r
            if term or trunc:
                break
        assert trunc and total == pytest.approx(env.failure_penalty)

    def test_observation_layout(self):
        env = FetchReachEnv()
        obs = env.reset(seed=2)
        assert obs.shape == (10,)
        np.testing.assert_array_equal(obs[:3], env.q)
        np.testing.assert_array_equal(obs[6:8], env.end_effector())
        np.testing.assert_array_equal(obs[8:10], env.goal)

    def test_joint_limits(self):
        env = FetchReachEnv()
        env.reset(seed=0)
        for _ in range(100):
            env.step(np.ones(3))
        assert (np.abs(env.q) <= np.pi + 1e-9).all()

    def test_shaped_reward_positive_when_approaching(self):
        env = FetchReachEnv(shaped=True)
        env.reset(seed=3)
        ee = env.end_effector()
        err = env.goal - ee
        angles = np.cumsum(env.q)
        jac = np.zeros((2, 3))
        for j in range(3):
            jac[:, j] = [
                -np.sum([env.link_lengths[k] * np.sin(angles[k]) for k in range(j, 3)]),
                np.sum([env.link_lengths[k] * np.cos(angles[k]) for k in range(j, 3)]),
            ]
        a = np.clip(5.0 * jac.T @ err, -1, 1)
        _, reward, _, _, _ = env.step(a)
        assert reward > 0.0


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 1000))
def test_property_fetchreach_episode_always_ends(seed):
    env = FetchReachEnv()
    env.reset(seed=seed)
    rng = np.random.default_rng(seed)
    for t in range(env.max_steps + 1):
        _, _, term, trunc, _ = env.step(rng.uniform(-1, 1, 3))
        if term or trunc:
            break
    assert term or trunc
