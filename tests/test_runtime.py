"""Parallel execution runtime: vectorized envs, collector parity, scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro import envs
from repro.attacks import AttackConfig, StatePerturbationEnv, collect_adversary_rollout, train_sarl
from repro.attacks.base import knn_feature
from repro.envs.core import Env
from repro.envs.spaces import Box
from repro.experiments import ExperimentScale, train_best_of_seeds, train_single_agent_attack
from repro.rl import TrainConfig, train_ppo
from repro.rl.policy import ActorCritic
from repro.runtime import (
    LANE_SEED_STRIDE,
    Job,
    SyncVectorEnv,
    collect_adversary_rollout_vec,
    derive_job_seeds,
    run_parallel,
)

EPISODE_LEN = 8


class ScriptedEnv(Env):
    """Deterministic env: fixed-length episodes, reward 1 per step, no KNN keys."""

    def __init__(self, ends_with: str = "terminated"):
        super().__init__()
        self.observation_space = Box(-np.inf, np.inf, (3,))
        self.action_space = Box(-1.0, 1.0, (2,))
        self.ends_with = ends_with
        self._t = 0

    def _reset(self) -> np.ndarray:
        self._t = 0
        return np.zeros(3)

    def step(self, action):
        self._t += 1
        obs = np.full(3, float(self._t))
        ends = self._t >= EPISODE_LEN
        terminated = ends and self.ends_with == "terminated"
        truncated = ends and self.ends_with == "truncated"
        info = {"success": ends, "victim_reward": 2.0}
        return obs, 1.0, terminated, truncated, info


def scripted_policy(rng_seed: int = 7) -> ActorCritic:
    return ActorCritic(3, 2, hidden_sizes=(8,), rng=np.random.default_rng(rng_seed))


@pytest.fixture(scope="module")
def small_victim():
    result = train_ppo(envs.make("Hopper-v0"),
                       TrainConfig(iterations=1, steps_per_iteration=256, seed=0))
    result.policy.freeze_normalizer()
    return result.policy


class TestSyncVectorEnv:
    def test_shapes_and_autoreset(self):
        vec = SyncVectorEnv([ScriptedEnv() for _ in range(3)])
        obs = vec.reset(seed=0)
        assert obs.shape == (3, 3)
        for t in range(1, EPISODE_LEN):
            obs, rewards, term, trunc, infos = vec.step(np.zeros((3, 2)))
            assert not term.any() and not trunc.any()
            assert np.allclose(obs, t)
        obs, rewards, term, trunc, infos = vec.step(np.zeros((3, 2)))
        assert term.all()
        # auto-reset: obs is the new episode's start, final obs in info
        assert np.allclose(obs, 0.0)
        for info in infos:
            assert np.allclose(info["final_obs"], EPISODE_LEN)

    def test_lane_zero_seed_matches_single_env(self):
        single = ScriptedEnv()
        single.seed(123)
        vec = SyncVectorEnv([ScriptedEnv(), ScriptedEnv()])
        vec.seed(123)
        assert (vec.envs[0].np_random.bit_generator.state
                == single.np_random.bit_generator.state)
        other = ScriptedEnv()
        other.seed(123 + LANE_SEED_STRIDE)
        assert (vec.envs[1].np_random.bit_generator.state
                == other.np_random.bit_generator.state)

    def test_factory_and_validation(self):
        vec = SyncVectorEnv.from_factory(ScriptedEnv, 4)
        assert vec.num_envs == len(vec) == 4
        with pytest.raises(ValueError):
            SyncVectorEnv([])
        with pytest.raises(ValueError):
            vec.step(np.zeros((3, 2)))


class TestKnnFeatureFallback:
    def test_missing_keys_default_to_zero(self):
        assert np.array_equal(knn_feature({}, "knn_victim", 4), np.zeros(4))
        value = knn_feature({"knn_victim": [1.0, 2.0]}, "knn_victim", 4)
        assert np.array_equal(value, [1.0, 2.0])

    def test_serial_collector_survives_non_imap_env(self):
        env = ScriptedEnv()
        env.seed(0)
        rollout = collect_adversary_rollout(env, scripted_policy(), 32,
                                            np.random.default_rng(0))
        assert rollout.knn_victim.shape == (32, 3)
        assert np.all(rollout.knn_victim == 0.0)


class TestCollectorParity:
    FIELDS = ("obs", "actions", "log_probs", "rewards", "values_e", "values_i",
              "dones", "terminated", "bootstrap_e", "bootstrap_i",
              "knn_victim", "knn_adversary")

    def _assert_identical(self, serial, vectorized):
        for field in self.FIELDS:
            a, b = getattr(serial, field), getattr(vectorized, field)
            assert np.array_equal(a, b), f"{field} differs between serial and vec"
        assert serial.episode_rewards == vectorized.episode_rewards
        assert serial.episode_victim_rewards == vectorized.episode_victim_rewards
        assert serial.episode_successes == vectorized.episode_successes

    @pytest.mark.parametrize("ends_with", ["terminated", "truncated"])
    def test_scripted_env_bit_identical(self, ends_with):
        serial_env = ScriptedEnv(ends_with)
        serial_env.seed(5)
        serial = collect_adversary_rollout(serial_env, scripted_policy(), 36,
                                           np.random.default_rng(3))
        vec = SyncVectorEnv([ScriptedEnv(ends_with)])
        vec.seed(5)
        vectorized = collect_adversary_rollout_vec(vec, scripted_policy(), 36,
                                                   np.random.default_rng(3))
        self._assert_identical(serial, vectorized)

    def test_hopper_adversary_bit_identical(self, small_victim):
        def adv_env():
            return StatePerturbationEnv(envs.make("Hopper-v0"), small_victim,
                                        epsilon=0.6, seed=0)

        def policy(env):
            return ActorCritic(env.observation_space.shape[0],
                               env.action_space.shape[0],
                               rng=np.random.default_rng(11))

        serial_env = adv_env()
        serial_env.seed(5)
        serial = collect_adversary_rollout(serial_env, policy(serial_env), 192,
                                           np.random.default_rng(3))
        vec = SyncVectorEnv([adv_env()])
        vec.seed(5)
        vectorized = collect_adversary_rollout_vec(vec, policy(vec), 192,
                                                   np.random.default_rng(3))
        self._assert_identical(serial, vectorized)

    def test_requires_divisible_steps(self):
        vec = SyncVectorEnv([ScriptedEnv() for _ in range(3)])
        with pytest.raises(ValueError, match="divisible"):
            collect_adversary_rollout_vec(vec, scripted_policy(), 32,
                                          np.random.default_rng(0))


class TestCollectorMultiLane:
    @pytest.mark.parametrize("n_envs", [2, 4])
    def test_episode_stats_consistent(self, n_envs):
        # 24 steps per lane = exactly 3 scripted episodes per lane.
        n_steps = 24 * n_envs
        vec = SyncVectorEnv([ScriptedEnv() for _ in range(n_envs)])
        vec.seed(0)
        rollout = collect_adversary_rollout_vec(vec, scripted_policy(), n_steps,
                                                np.random.default_rng(0))
        assert len(rollout) == n_steps
        assert rollout.obs.shape == (n_steps, 3)
        assert len(rollout.episode_rewards) == 3 * n_envs
        assert all(r == float(EPISODE_LEN) for r in rollout.episode_rewards)
        assert all(v == 2.0 * EPISODE_LEN for v in rollout.episode_victim_rewards)
        assert rollout.victim_success_rate == 1.0
        assert rollout.j_ap == float(EPISODE_LEN)

    def test_lane_boundaries_are_truncations(self):
        # Lane length 20 cuts the third scripted episode mid-flight: interior
        # lane ends must read as truncations with a bootstrapped value.
        vec = SyncVectorEnv([ScriptedEnv() for _ in range(2)])
        vec.seed(0)
        rollout = collect_adversary_rollout_vec(vec, scripted_policy(), 40,
                                                np.random.default_rng(0))
        lane_end = 19  # last index of lane 0's block
        assert rollout.dones[lane_end] == 1.0
        assert rollout.terminated[lane_end] == 0.0
        assert rollout.bootstrap_e[lane_end] != 0.0
        # only 2 completed episodes per lane survive the cut
        assert len(rollout.episode_rewards) == 4

    def test_trainer_accepts_vector_env(self, small_victim):
        def adv_env():
            return StatePerturbationEnv(envs.make("Hopper-v0"), small_victim,
                                        epsilon=0.6, seed=0)

        vec = SyncVectorEnv([adv_env() for _ in range(2)])
        config = AttackConfig(iterations=1, steps_per_iteration=128, seed=0)
        result = train_sarl(vec, config)
        assert len(result.history) == 1
        assert result.history[0]["samples"] == 128.0

    def test_runner_n_envs_plumbing(self, small_victim):
        scale = ExperimentScale(name="smoke", victim_iterations=1,
                                attack_iterations=1, steps_per_iteration=64,
                                eval_episodes=2, game_victim_iterations=1,
                                game_hardening_iterations=0, game_attack_iterations=1)
        result = train_single_agent_attack("Hopper-v0", small_victim, "sarl",
                                           scale, seed=0, n_envs=2)
        assert result is not None and len(result.history) == 1


# --- scheduler ---------------------------------------------------------

def _square(x, seed=None):
    return x * x


def _use_seed(seed=None):
    return seed


def _boom(seed=None):
    raise ValueError("injected worker failure")


class TestScheduler:
    def _jobs(self):
        return [Job(fn=_square, args=(2,), name="a"),
                Job(fn=_boom, name="b"),
                Job(fn=_square, args=(3,), name="c")]

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_failure_is_captured_not_fatal(self, max_workers):
        report = run_parallel(self._jobs(), max_workers=max_workers)
        assert [r.name for r in report.results] == ["a", "b", "c"]
        assert report.values() == [4, None, 9]
        assert report.n_failed == 1
        failure = report.failures[0]
        assert failure.name == "b"
        assert "ValueError" in failure.error
        assert "injected worker failure" in failure.traceback
        assert "2/3 jobs ok" in report.summary()

    def test_seed_injection(self):
        jobs = [Job(fn=_use_seed, name=f"j{i}", seed=seed)
                for i, seed in enumerate(derive_job_seeds(0, 3))]
        report = run_parallel(jobs, max_workers=2)
        assert report.n_failed == 0
        assert report.values() == derive_job_seeds(0, 3)

    def test_derived_seeds_are_stable_and_distinct(self):
        seeds = derive_job_seeds(42, 8)
        assert seeds == derive_job_seeds(42, 8)
        assert len(set(seeds)) == 8
        assert derive_job_seeds(43, 8) != seeds

    def test_stats(self):
        report = run_parallel([Job(fn=_square, args=(i,)) for i in range(4)],
                              max_workers=2)
        assert report.wall_clock > 0
        assert report.total_job_time >= 0
        assert report.max_workers == 2

    def test_zero_wall_clock_reports_neutral_speedup(self):
        from repro.runtime import JobResult, ScheduleReport
        report = ScheduleReport(
            results=[JobResult(name="a", ok=True, duration=0.0)],
            wall_clock=0.0, max_workers=2)
        # Sub-resolution sweeps must not claim "0.00x speedup".
        assert report.speedup == 1.0
        assert "speedup" not in report.summary()
        assert "1/1 jobs ok" in report.summary()

    def test_derive_job_seeds_rejects_bad_inputs(self):
        with pytest.raises(TypeError, match="base_seed must be an integer"):
            derive_job_seeds("42", 3)
        with pytest.raises(TypeError, match="base_seed must be an integer"):
            derive_job_seeds(True, 3)
        with pytest.raises(ValueError, match="non-negative integer"):
            derive_job_seeds(42, -1)
        with pytest.raises(ValueError, match="non-negative integer"):
            derive_job_seeds(42, 2.5)
        assert derive_job_seeds(42, 0) == []
        assert derive_job_seeds(np.int64(42), 2) == derive_job_seeds(42, 2)


class TestMultiSeedParallel:
    def test_parallel_matches_sequential_selection(self, small_victim):
        scale = ExperimentScale(name="smoke", victim_iterations=1,
                                attack_iterations=1, steps_per_iteration=128,
                                eval_episodes=3, game_victim_iterations=1,
                                game_hardening_iterations=0, game_attack_iterations=1)
        sequential = train_best_of_seeds("Hopper-v0", small_victim, "sarl",
                                         scale, seeds=(0, 1))
        parallel = train_best_of_seeds("Hopper-v0", small_victim, "sarl",
                                       scale, seeds=(0, 1), max_workers=2)
        assert parallel.errors == []
        assert parallel.seeds == [0, 1]
        assert [e.mean_reward for e in parallel.evaluations] == \
            [e.mean_reward for e in sequential.evaluations]
        assert parallel.best_index == sequential.best_index
        assert np.array_equal(
            parallel.best_result.policy.state_dict()["actor.output.weight"],
            sequential.best_result.policy.state_dict()["actor.output.weight"])


class TestCliJobsFlag:
    def test_parser_accepts_jobs(self):
        from repro.experiments.cli import build_parser
        args = build_parser().parse_args(["table1", "--jobs", "3"])
        assert args.jobs == 3
        assert build_parser().parse_args(["table1"]).jobs == 1

    def test_parser_accepts_job_timeout(self):
        from repro.experiments.cli import build_parser
        args = build_parser().parse_args(["table1", "--job-timeout", "120"])
        assert args.job_timeout == 120.0
        assert build_parser().parse_args(["table1"]).job_timeout is None

    def test_run_short_experiments_parser(self):
        import importlib.util
        from pathlib import Path
        spec = importlib.util.spec_from_file_location(
            "run_short_experiments",
            Path(__file__).resolve().parents[1] / "scripts" / "run_short_experiments.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert len(module.SECTIONS) == 6
