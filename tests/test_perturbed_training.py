"""Perturbation-aware training: models and shared collector."""

from __future__ import annotations

import numpy as np
import pytest

from repro import envs
from repro.defenses import (
    DefenseTrainConfig,
    FgsmPerturbation,
    PolicyPerturbation,
    RandomNoisePerturbation,
    collect_rollout_with_perturbation,
    train_with_perturbation,
)
from repro.density import ParzenDensityEstimator
from repro.rl import ActorCritic, RolloutBuffer


class TestPerturbationModels:
    def test_random_noise_bounded(self, tiny_victim, rng):
        pert = RandomNoisePerturbation(0.25, rng)
        delta = pert(tiny_victim, np.zeros(11))
        assert np.abs(delta).max() <= 0.25
        assert delta.shape == (11,)

    def test_fgsm_bounded(self, tiny_victim, rng):
        pert = FgsmPerturbation(0.2, rng)
        delta = pert(tiny_victim, rng.standard_normal((4, 11)))
        assert np.abs(delta).max() <= 0.2 + 1e-12

    def test_policy_perturbation_projects(self, tiny_victim, rng):
        class Big:
            def action(self, obs, rng=None, deterministic=False):
                return np.full(11, 7.0)

        pert = PolicyPerturbation(Big(), 0.3, rng)
        delta = pert(tiny_victim, np.zeros(11))
        np.testing.assert_allclose(delta, np.full(11, 0.3))


class TestCollector:
    def test_stores_perturbed_inputs(self, rng):
        env = envs.make("Hopper-v0")
        env.seed(0)
        victim = ActorCritic(11, 3, hidden_sizes=(8,), rng=rng)
        buffer = RolloutBuffer(32, 11, 3)

        class Shift:
            def __call__(self, v, normalized):
                return np.full_like(normalized, 0.5)

        collect_rollout_with_perturbation(env, victim, Shift(), buffer, rng)
        env2 = envs.make("Hopper-v0")
        env2.seed(0)
        victim2 = ActorCritic(11, 3, hidden_sizes=(8,), rng=np.random.default_rng(12345))
        victim2.load_state_dict(victim.state_dict())
        buffer2 = RolloutBuffer(32, 11, 3)
        collect_rollout_with_perturbation(env2, victim2, None, buffer2,
                                          np.random.default_rng(12345))
        # the stored observations differ by construction
        assert not np.allclose(buffer.obs[0], buffer2.obs[0])

    def test_returns_mean_episode_return(self, rng):
        env = envs.make("FetchReach-v0")
        env.seed(0)
        victim = ActorCritic(10, 3, hidden_sizes=(8,), rng=rng)
        buffer = RolloutBuffer(150, 10, 3)
        ret = collect_rollout_with_perturbation(env, victim, None, buffer, rng)
        assert np.isfinite(ret)


class TestTrainWithPerturbation:
    def test_produces_frozen_victim(self):
        cfg = DefenseTrainConfig(iterations=1, steps_per_iteration=128,
                                 hidden_sizes=(8,), seed=0, epsilon=0.3)
        victim = train_with_perturbation(
            lambda: envs.make("Hopper-v0"), cfg,
            lambda rng: RandomNoisePerturbation(cfg.epsilon, rng))
        assert victim.normalizer.frozen

    def test_none_perturbation_builder(self):
        cfg = DefenseTrainConfig(iterations=1, steps_per_iteration=128,
                                 hidden_sizes=(8,), seed=0)
        victim = train_with_perturbation(
            lambda: envs.make("Hopper-v0"), cfg, lambda rng: None)
        assert victim.actor.output.weight.data.shape == (8, 3)


class TestParzen:
    def test_density_higher_in_cluster(self, rng):
        refs = np.vstack([rng.normal(0, 0.2, (80, 2)), rng.normal(8, 0.2, (5, 2))])
        est = ParzenDensityEstimator(refs, bandwidth=0.5)
        dens = est.density(np.array([[0.0, 0.0], [8.0, 8.0], [4.0, 4.0]]))
        assert dens[0] > dens[1] > dens[2]

    def test_bandwidth_validated(self):
        with pytest.raises(ValueError):
            ParzenDensityEstimator(np.zeros((3, 2)), bandwidth=0.0)

    def test_log_density_finite_far_away(self, rng):
        est = ParzenDensityEstimator(rng.standard_normal((20, 2)), bandwidth=0.3)
        out = est.log_density(np.array([[100.0, 100.0]]))
        assert np.isfinite(out).all()

    def test_empty_references(self):
        est = ParzenDensityEstimator(np.zeros((0, 2)))
        np.testing.assert_array_equal(est.density(np.zeros((3, 2))), np.ones(3))

    def test_chunked_matches_unchunked(self, rng):
        refs = rng.standard_normal((50, 3))
        queries = rng.standard_normal((30, 3))
        a = ParzenDensityEstimator(refs, bandwidth=0.7, chunk_size=7).density(queries)
        b = ParzenDensityEstimator(refs, bandwidth=0.7, chunk_size=1000).density(queries)
        np.testing.assert_allclose(a, b, atol=1e-12)
