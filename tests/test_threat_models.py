"""Threat-model adapters: perturbation projection, adversary MDP semantics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import envs
from repro.attacks import (
    EPSILON_BUDGETS,
    OpponentEnv,
    RandomAttackPolicy,
    StatePerturbationEnv,
    default_epsilon,
    project_perturbation,
)
from repro.rl import ActorCritic


class TestProjection:
    def test_linf_scales_and_clips(self):
        raw = np.array([2.0, -0.5, -3.0])
        out = project_perturbation(raw, epsilon=0.1, norm="linf")
        np.testing.assert_allclose(out, [0.1, -0.05, -0.1])

    def test_l2_inside_ball_unchanged(self):
        raw = np.array([0.3, 0.4])  # norm 0.5 * eps
        out = project_perturbation(raw, epsilon=1.0, norm="l2")
        np.testing.assert_allclose(out, [0.3, 0.4])

    def test_l2_projects_to_sphere(self):
        raw = np.array([3.0, 4.0])
        out = project_perturbation(raw, epsilon=1.0, norm="l2")
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_unknown_norm(self):
        with pytest.raises(ValueError):
            project_perturbation(np.zeros(2), 0.1, norm="l7")

    def test_epsilon_budgets_match_paper_ordering(self):
        assert EPSILON_BUDGETS["Walker2d-v0"] < EPSILON_BUDGETS["Hopper-v0"]
        assert EPSILON_BUDGETS["Hopper-v0"] < EPSILON_BUDGETS["HalfCheetah-v0"]
        assert EPSILON_BUDGETS["HalfCheetah-v0"] == EPSILON_BUDGETS["Ant-v0"]
        assert default_epsilon("SparseHopper-v0") > 0


class TestStatePerturbationEnv:
    def test_spaces(self, tiny_victim):
        adv = StatePerturbationEnv(envs.make("Hopper-v0"), tiny_victim, epsilon=0.1)
        assert adv.observation_space.shape == (11,)
        assert adv.action_space.shape == (11,)

    def test_surrogate_reward_is_indicator(self, tiny_victim, rng):
        adv = StatePerturbationEnv(envs.make("Hopper-v0"), tiny_victim, epsilon=0.1)
        obs = adv.reset(seed=0)
        rewards = set()
        for _ in range(50):
            obs, r, term, trunc, info = adv.step(rng.uniform(-1, 1, 11))
            rewards.add(r)
            assert "victim_reward" in info
            if term or trunc:
                adv.reset()
        assert rewards <= {0.0, -1.0}

    def test_perturbation_bounded(self, tiny_victim, rng):
        eps = 0.2
        adv = StatePerturbationEnv(envs.make("Hopper-v0"), tiny_victim, epsilon=eps)
        adv.reset(seed=0)
        _, _, _, _, info = adv.step(rng.uniform(-5, 5, 11))
        assert np.abs(info["perturbation"]).max() <= eps + 1e-12

    def test_zero_attack_matches_clean_victim(self, tiny_victim):
        """With a zero perturbation the victim behaves exactly as unattacked."""
        env1, env2 = envs.make("Hopper-v0"), envs.make("Hopper-v0")
        adv = StatePerturbationEnv(env1, tiny_victim, epsilon=0.5, seed=7)
        adv.seed(42)
        obs_a = adv.reset()
        env2.seed(42)
        obs_c = env2.reset()
        rng = np.random.default_rng(3)
        for _ in range(20):
            _, _, term_a, trunc_a, info = adv.step(np.zeros(11))
            action = tiny_victim.action(obs_c, rng, deterministic=True)
            obs_c, reward_c, term_c, trunc_c, _ = env2.step(action)
            assert info["victim_reward"] == pytest.approx(reward_c)
            assert term_a == term_c
            if term_a or trunc_a:
                break

    def test_step_requires_reset(self, tiny_victim):
        adv = StatePerturbationEnv(envs.make("Hopper-v0"), tiny_victim, epsilon=0.1)
        with pytest.raises(RuntimeError):
            adv.step(np.zeros(11))

    def test_knn_features_present(self, tiny_victim, rng):
        adv = StatePerturbationEnv(envs.make("Hopper-v0"), tiny_victim, epsilon=0.1)
        adv.reset(seed=0)
        _, _, _, _, info = adv.step(rng.uniform(-1, 1, 11))
        assert info["knn_victim"].shape == (11,)
        assert info["knn_adversary"].shape == (11,)

    def test_observation_is_normalized_victim_view(self, tiny_victim):
        adv = StatePerturbationEnv(envs.make("Hopper-v0"), tiny_victim, epsilon=0.1)
        obs = adv.reset(seed=5)
        assert np.abs(obs).max() <= tiny_victim.normalizer.clip + 1e-9


class TestOpponentEnv:
    @pytest.fixture
    def game_victim(self, rng):
        return ActorCritic(14, 3, hidden_sizes=(16,), rng=rng)

    def test_spaces(self, game_victim):
        adv = OpponentEnv(envs.make_game("YouShallNotPass-v0"), game_victim)
        assert adv.observation_space.shape == (14,)
        assert adv.action_space.shape == (3,)

    def test_episode_produces_outcome(self, game_victim, rng):
        adv = OpponentEnv(envs.make_game("YouShallNotPass-v0"), game_victim, seed=0)
        adv.reset(seed=0)
        done = False
        while not done:
            _, r, done, trunc, info = adv.step(rng.uniform(-1, 1, 3))
        assert info["victim_win"] != info["adversary_win"]
        assert info["knn_victim"].shape == (6,)

    def test_reward_only_on_victim_win(self, game_victim, rng):
        adv = OpponentEnv(envs.make_game("YouShallNotPass-v0"), game_victim, seed=0)
        adv.reset(seed=0)
        total = 0.0
        done = False
        while not done:
            _, r, done, _, info = adv.step(rng.uniform(-1, 1, 3))
            total += r
        expected = -1.0 if info["victim_win"] else 0.0
        assert total == pytest.approx(expected)


class TestRandomAttackPolicy:
    def test_actions_uniform_in_cube(self):
        pol = RandomAttackPolicy(5, seed=0)
        acts = np.array([pol.action(np.zeros(5)) for _ in range(200)])
        assert acts.min() >= -1.0 and acts.max() <= 1.0
        assert abs(acts.mean()) < 0.1

    def test_for_env_helper(self, tiny_victim):
        adv = StatePerturbationEnv(envs.make("Hopper-v0"), tiny_victim, epsilon=0.1)
        pol = RandomAttackPolicy.for_env(adv)
        assert pol.action_dim == 11


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, 6, elements=st.floats(-10, 10)), st.floats(0.01, 2.0))
def test_property_linf_projection_in_ball(raw, eps):
    out = project_perturbation(raw, epsilon=eps, norm="linf")
    assert np.abs(out).max() <= eps + 1e-12


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, 6, elements=st.floats(-10, 10)), st.floats(0.01, 2.0))
def test_property_l2_projection_in_ball(raw, eps):
    out = project_perturbation(raw, epsilon=eps, norm="l2")
    assert np.linalg.norm(out) <= eps + 1e-9


class _StatelessGame:
    """A two-player game that forgets to publish per-body state vectors."""

    def __init__(self, info):
        from repro.envs.spaces import Box

        self._info = dict(info)
        self.adversary_observation_space = Box(-np.inf, np.inf, (3,))
        self.adversary_action_space = Box(-1.0, 1.0, (2,))

    def seed(self, seed):
        pass

    def reset(self):
        return np.zeros(4), np.zeros(3)

    def step(self, victim_action, adversary_action):
        return (np.zeros(4), np.zeros(3)), (0.0, 0.0), True, dict(self._info)


class _StubVictim:
    def action(self, obs, rng, deterministic=True):
        return np.zeros(1)


class TestOpponentEnvStateValidation:
    """Missing/bad body state must raise, not become a 0-d NaN (bugfix)."""

    def _step(self, info):
        adv = OpponentEnv(_StatelessGame(info), _StubVictim())
        adv.reset()
        return adv.step(np.zeros(2))

    def test_missing_victim_state_raises(self):
        with pytest.raises(KeyError, match="victim_state"):
            self._step({"adversary_state": np.zeros(4)})

    def test_missing_adversary_state_raises(self):
        with pytest.raises(KeyError, match="adversary_state"):
            self._step({"victim_state": np.zeros(4)})

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError, match="1-d state vector"):
            self._step({"victim_state": np.zeros((2, 2)),
                        "adversary_state": np.zeros(4)})

    def test_empty_state_raises(self):
        with pytest.raises(ValueError, match="1-d state vector"):
            self._step({"victim_state": np.zeros(0),
                        "adversary_state": np.zeros(4)})

    def test_non_numeric_state_raises(self):
        with pytest.raises(ValueError, match="not convertible"):
            self._step({"victim_state": ["a", "b"],
                        "adversary_state": np.zeros(4)})

    def test_valid_states_pass_through(self):
        _, _, _, _, info = self._step({"victim_state": np.arange(4.0),
                                       "adversary_state": np.ones(5)})
        np.testing.assert_array_equal(info["knn_victim"], np.arange(4.0))
        np.testing.assert_array_equal(info["knn_adversary"], np.ones(5))
